(* Compiler-pass tests: each transformation must produce verifying IR,
   insert what it promises, and preserve program results. *)
module T = Mira_mir.Types
module Ir = Mira_mir.Ir
module B = Mira_mir.Builder
module Verifier = Mira_mir.Verifier
module Instrument = Mira_passes.Instrument
module Convert = Mira_passes.Convert_remote
module Prefetch = Mira_passes.Prefetch_pass
module Evict = Mira_passes.Evict_hints
module Fusion = Mira_passes.Fusion
module Native = Mira_passes.Native_deref
module Pipeline = Mira_passes.Pipeline
module Machine = Mira_interp.Machine
module Value = Mira_interp.Value

let params = Mira_sim.Params.default

let count_ops pred prog =
  List.fold_left
    (fun acc (_, f) ->
      Ir.fold_ops (fun n op -> if pred op then n + 1 else n) acc f.Ir.f_body)
    0 prog.Ir.p_funcs

let graph_program () =
  Mira_workloads.Graph_traversal.build
    { Mira_workloads.Graph_traversal.config_default with
      Mira_workloads.Graph_traversal.num_edges = 2000;
      num_nodes = 300 }

let run_native prog =
  let ms = Mira_baselines.Native.create ~capacity:(1 lsl 24) () in
  Machine.run (Machine.create ms prog)

let edges_site prog = Mira_workloads.Workload_util.site_id prog "edges"
let nodes_site prog = Mira_workloads.Workload_util.site_id prog "nodes"

let test_instrument () =
  let prog = graph_program () in
  let inst = Instrument.run prog in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Verifier.verify inst));
  let enters = count_ops (function Ir.ProfEnter _ -> true | _ -> false) inst in
  Alcotest.(check int) "one enter per function" (List.length inst.Ir.p_funcs) enters;
  let stripped = Instrument.strip inst in
  Alcotest.(check int) "strip removes" 0
    (count_ops (function Ir.ProfEnter _ | Ir.ProfExit _ -> true | _ -> false) stripped);
  (* idempotent *)
  let twice = Instrument.run inst in
  Alcotest.(check int) "idempotent" enters
    (count_ops (function Ir.ProfEnter _ -> true | _ -> false) twice)

let test_instrument_only () =
  let prog = graph_program () in
  let inst = Instrument.run_only prog ~names:[ "work" ] in
  let enters = count_ops (function Ir.ProfEnter _ -> true | _ -> false) inst in
  Alcotest.(check int) "only work instrumented" 1 enters

let test_convert_marks_selected () =
  let prog = graph_program () in
  let e = edges_site prog and n = nodes_site prog in
  let conv = Convert.run prog ~selected:[ e; n ] in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Verifier.verify conv));
  let remote_loads =
    count_ops
      (function Ir.Load { meta; _ } -> meta.Ir.am_remote | _ -> false)
      conv
  in
  Alcotest.(check bool) "loads converted" true (remote_loads > 0);
  let conv_none = Convert.run prog ~selected:[] in
  Alcotest.(check int) "nothing selected, nothing converted" 0
    (count_ops
       (function
         | Ir.Load { meta; _ } | Ir.Store { meta; _ } -> meta.Ir.am_remote
         | _ -> false)
       conv_none)

let test_prefetch_inserts () =
  let prog = graph_program () in
  let e = edges_site prog and n = nodes_site prog in
  let conv = Convert.run prog ~selected:[ e; n ] in
  let line_of site = if site = e then Some 1024 else if site = n then Some 128 else None in
  let pf = Prefetch.run conv ~params ~line_of in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Verifier.verify pf));
  let prefetches = count_ops (function Ir.Prefetch _ -> true | _ -> false) pf in
  (* sequential edges + two indirect node groups + preamble *)
  Alcotest.(check bool) "prefetches inserted" true (prefetches >= 3)

let test_prefetch_distance () =
  let d_small = Prefetch.distance_iters ~params ~body_ops:1000 in
  let d_big = Prefetch.distance_iters ~params ~body_ops:5 in
  Alcotest.(check bool) "heavier body, shorter distance" true (d_small < d_big);
  Alcotest.(check bool) "at least 1" true (d_small >= 1)

let test_evict_inserts () =
  let prog = graph_program () in
  let e = edges_site prog in
  let conv = Convert.run prog ~selected:[ e ] in
  let line_of site = if site = e then Some 1024 else None in
  let ev = Evict.run conv ~line_of in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Verifier.verify ev));
  let flushes = count_ops (function Ir.FlushEvict _ -> true | _ -> false) ev in
  Alcotest.(check bool) "flush-behind inserted" true (flushes > 0)

let fusable_program () =
  let b = B.program "fuse" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let n = 64 in
      let a, _ = B.alloc fb ~name:"fa" T.I64 (B.iconst n) in
      let c, _ = B.alloc fb ~name:"fc" T.I64 (B.iconst n) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
          let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:p ~value:i);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
          let p = B.gep fb ~base:c ~index:i ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:p ~value:(B.bin fb Ir.Mul i (B.iconst 2)));
      (* dependent loop: reads both; cannot fuse with the writers above
         (write->read across different iterations is conservative) *)
      let acc, _ = B.alloc fb ~name:"facc" ~space:Ir.Stack T.I64 (B.iconst 1) in
      B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
          let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
          let v1 = B.load fb T.I64 p in
          let q = B.gep fb ~base:c ~index:i ~elem:T.I64 () in
          let v2 = B.load fb T.I64 q in
          let s = B.load fb T.I64 acc in
          let s = B.bin fb Ir.Add s (B.bin fb Ir.Add v1 v2) in
          B.store fb T.I64 ~ptr:acc ~value:s);
      let v = B.load fb T.I64 acc in
      B.ret fb v);
  B.finish b ~entry:"main"

let count_loops prog =
  count_ops (function Ir.For _ -> true | _ -> false) prog

let test_fusion_fuses_independent () =
  let prog = fusable_program () in
  let before = count_loops prog in
  let fused = Fusion.run prog in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Verifier.verify fused));
  Alcotest.(check int) "two writers fused" (before - 1) (count_loops fused);
  (* semantics preserved *)
  Alcotest.(check bool) "same result" true
    (Value.equal (run_native prog) (run_native fused))

let test_fusion_respects_dependences () =
  (* writer then reader of the same site must NOT fuse *)
  let b = B.program "nofuse" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let n = 16 in
      let a, _ = B.alloc fb ~name:"na" T.I64 (B.iconst n) in
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
          let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
          B.store fb T.I64 ~ptr:p ~value:i);
      B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst n) (fun i ->
          let p = B.gep fb ~base:a ~index:i ~elem:T.I64 () in
          ignore (B.load fb T.I64 p));
      B.ret fb (B.iconst 0));
  let prog = B.finish b ~entry:"main" in
  let fused = Fusion.run prog in
  Alcotest.(check int) "loops unchanged" (count_loops prog) (count_loops fused)

let test_native_deref_marks () =
  let prog = graph_program () in
  let e = edges_site prog and n = nodes_site prog in
  let conv = Convert.run prog ~selected:[ e; n ] in
  let line_of site = if site = e || site = n then Some 1024 else None in
  let marked = Native.run conv ~line_of in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Verifier.verify marked));
  let natives =
    count_ops
      (function
        | Ir.Load { meta; _ } | Ir.Store { meta; _ } -> meta.Ir.am_native
        | _ -> false)
      marked
  in
  (* edges[i].to / .weight after .from, plus node field reuses *)
  Alcotest.(check bool) "subsequent accesses native" true (natives >= 2)

let test_pipeline_preserves_semantics () =
  let prog = graph_program () in
  let e = edges_site prog and n = nodes_site prog in
  let plan = Pipeline.plan_all ~selected:[ e; n ] ~lines:[ (e, 1024); (n, 128) ] in
  let compiled = Pipeline.apply prog plan ~params in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Verifier.verify compiled));
  let v1 = run_native prog in
  let v2 = run_native compiled in
  Alcotest.(check bool) "identical results" true (Value.equal v1 v2);
  (* and on the full Mira runtime with sections *)
  let rt =
    Mira_runtime.Runtime.create
      (Mira_runtime.Runtime.Config.make ~local_budget:(1 lsl 17)
         ~far_capacity:(1 lsl 22))
  in
  let mgr = Mira_runtime.Runtime.manager rt in
  let clock = Mira_sim.Clock.create () in
  (match
     Mira_cache.Manager.add_section mgr ~clock
       (Mira_cache.Section.config_default ~sec_id:1 ~name:"e" ~line:1024
          ~size:(1 lsl 14))
   with
  | Ok _ -> Mira_cache.Manager.assign_site mgr ~site:e ~sec_id:1
  | Error m -> Alcotest.fail m);
  (match
     Mira_cache.Manager.add_section mgr ~clock
       { (Mira_cache.Section.config_default ~sec_id:2 ~name:"n" ~line:128
            ~size:(1 lsl 15))
         with Mira_cache.Section.structure = Mira_cache.Section.Set_assoc 8 }
   with
  | Ok _ -> Mira_cache.Manager.assign_site mgr ~site:n ~sec_id:2
  | Error m -> Alcotest.fail m);
  let v3 = Machine.run (Machine.create (Mira_runtime.Runtime.memsys rt) compiled) in
  Alcotest.(check bool) "sections produce same data" true (Value.equal v1 v3)

let test_pipeline_all_workloads_preserved () =
  (* Every workload compiled with every optimization must compute the
     same checksum as its uncompiled form. *)
  let check name prog =
    let heap_sites =
      List.map (fun s -> s.Ir.si_id) prog.Ir.p_sites
    in
    let lines = List.map (fun s -> (s, 256)) heap_sites in
    let plan = Pipeline.plan_all ~selected:heap_sites ~lines in
    let plan = { plan with Pipeline.offload = `None } in
    let compiled = Pipeline.apply prog plan ~params in
    Alcotest.(check bool) (name ^ " same result") true
      (Value.equal (run_native prog) (run_native compiled))
  in
  check "graph"
    (Mira_workloads.Graph_traversal.build
       { Mira_workloads.Graph_traversal.config_default with
         Mira_workloads.Graph_traversal.num_edges = 500; num_nodes = 64 });
  check "dataframe"
    (Mira_workloads.Dataframe.build
       { Mira_workloads.Dataframe.config_default with
         Mira_workloads.Dataframe.rows = 500; groups = 32 });
  check "mcf"
    (Mira_workloads.Mcf.build
       { Mira_workloads.Mcf.config_default with
         Mira_workloads.Mcf.num_nodes = 100; num_arcs = 400; rounds = 2 });
  check "gpt2"
    (Mira_workloads.Gpt2.build
       { Mira_workloads.Gpt2.config_default with
         Mira_workloads.Gpt2.layers = 2; d_model = 8; seq = 4 })

let suite =
  [
    Alcotest.test_case "instrument" `Quick test_instrument;
    Alcotest.test_case "instrument only" `Quick test_instrument_only;
    Alcotest.test_case "convert selection" `Quick test_convert_marks_selected;
    Alcotest.test_case "prefetch inserts" `Quick test_prefetch_inserts;
    Alcotest.test_case "prefetch distance" `Quick test_prefetch_distance;
    Alcotest.test_case "evict inserts" `Quick test_evict_inserts;
    Alcotest.test_case "fusion fuses" `Quick test_fusion_fuses_independent;
    Alcotest.test_case "fusion dependences" `Quick test_fusion_respects_dependences;
    Alcotest.test_case "native deref" `Quick test_native_deref_marks;
    Alcotest.test_case "pipeline semantics" `Quick test_pipeline_preserves_semantics;
    Alcotest.test_case "pipeline all workloads" `Slow test_pipeline_all_workloads_preserved;
  ]
