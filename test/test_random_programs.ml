(* Differential testing with randomly generated programs.

   A generator builds random (but always verifying) programs over a few
   far-memory arrays — nested loops, affine and data-dependent indexing
   guarded by modulo, reads/writes, reductions.  The property: the full
   optimization pipeline (fusion, conversion, prefetching, eviction
   hints, native-deref) and every memory system must compute exactly
   the value the native baseline computes. *)
module T = Mira_mir.Types
module Ir = Mira_mir.Ir
module B = Mira_mir.Builder
module Machine = Mira_interp.Machine
module Value = Mira_interp.Value
module Pipeline = Mira_passes.Pipeline

(* Recipe for one random program, small enough to print on failure. *)
type array_spec = { a_elems : int }

type stmt =
  | Seq_read of int  (** arr index, a[i] added to the accumulator *)
  | Seq_write of int  (** a[i] <- f(i) *)
  | Indirect_rmw of int * int  (** b[a[i] mod |b|] += 1 *)
  | Strided_read of int * int  (** a[(i*s) mod n] *)
  | Rev_read of int  (** a[n-1-i] *)

type recipe = {
  arrays : array_spec list;
  loops : (int * stmt list) list;  (** (trip count, body statements) *)
}

let pp_stmt = function
  | Seq_read a -> Printf.sprintf "read a%d[i]" a
  | Seq_write a -> Printf.sprintf "write a%d[i]" a
  | Indirect_rmw (a, b) -> Printf.sprintf "a%d[a%d[i] mod n]+=1" b a
  | Strided_read (a, s) -> Printf.sprintf "read a%d[i*%d mod n]" a s
  | Rev_read a -> Printf.sprintf "read a%d[n-1-i]" a

let pp_recipe r =
  Printf.sprintf "arrays=[%s] loops=[%s]"
    (String.concat ";" (List.map (fun a -> string_of_int a.a_elems) r.arrays))
    (String.concat " | "
       (List.map
          (fun (trip, body) ->
            Printf.sprintf "%dx{%s}" trip (String.concat "," (List.map pp_stmt body)))
          r.loops))

let gen_recipe =
  QCheck.Gen.(
    let* n_arrays = int_range 1 3 in
    let* arrays = list_repeat n_arrays (map (fun e -> { a_elems = 64 + (e * 8) }) (int_bound 64)) in
    let arr = int_bound (n_arrays - 1) in
    let gen_stmt =
      frequency
        [
          (3, map (fun a -> Seq_read a) arr);
          (3, map (fun a -> Seq_write a) arr);
          (2, map2 (fun a b -> Indirect_rmw (a, b)) arr arr);
          (2, map2 (fun a s -> Strided_read (a, 1 + s)) arr (int_bound 6));
          (1, map (fun a -> Rev_read a) arr);
        ]
    in
    let* n_loops = int_range 1 4 in
    let* loops =
      list_repeat n_loops
        (let* trip = int_range 8 128 in
         let* body = list_size (int_range 1 4) gen_stmt in
         return (trip, body))
    in
    return { arrays; loops })

let build_program (r : recipe) =
  let b = B.program "random" in
  B.func b "main" [] T.I64 (fun fb _ ->
      let arrays =
        List.mapi
          (fun idx spec ->
            let ptr, _ =
              B.alloc fb ~name:(Printf.sprintf "ra%d" idx) T.I64
                (B.iconst spec.a_elems)
            in
            (ptr, spec.a_elems))
          r.arrays
      in
      let acc, _ = B.alloc fb ~name:"racc" ~space:Ir.Stack T.I64 (B.iconst 1) in
      B.store fb T.I64 ~ptr:acc ~value:(B.iconst 0);
      (* deterministic init *)
      List.iter
        (fun (ptr, elems) ->
          B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst elems) (fun i ->
              let p = B.gep fb ~base:ptr ~index:i ~elem:T.I64 () in
              let v = B.bin fb Ir.Mul i (B.iconst 7) in
              let v = B.bin fb Ir.Land v (B.iconst 0xFF) in
              B.store fb T.I64 ~ptr:p ~value:v))
        arrays;
      let bump v =
        let s = B.load fb T.I64 acc in
        B.store fb T.I64 ~ptr:acc ~value:(B.bin fb Ir.Add s v)
      in
      List.iter
        (fun (trip, body) ->
          B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst trip) (fun i ->
              List.iter
                (fun stmt ->
                  match stmt with
                  | Seq_read a ->
                    let ptr, elems = List.nth arrays a in
                    let idx = B.bin fb Ir.Rem i (B.iconst elems) in
                    let p = B.gep fb ~base:ptr ~index:idx ~elem:T.I64 () in
                    bump (B.load fb T.I64 p)
                  | Seq_write a ->
                    let ptr, elems = List.nth arrays a in
                    let idx = B.bin fb Ir.Rem i (B.iconst elems) in
                    let p = B.gep fb ~base:ptr ~index:idx ~elem:T.I64 () in
                    B.store fb T.I64 ~ptr:p ~value:(B.bin fb Ir.Add i (B.iconst 3))
                  | Indirect_rmw (a, bdst) ->
                    let aptr, aelems = List.nth arrays a in
                    let bptr, belems = List.nth arrays bdst in
                    let ai = B.bin fb Ir.Rem i (B.iconst aelems) in
                    let p = B.gep fb ~base:aptr ~index:ai ~elem:T.I64 () in
                    let v = B.load fb T.I64 p in
                    let bi = B.bin fb Ir.Rem v (B.iconst belems) in
                    let q = B.gep fb ~base:bptr ~index:bi ~elem:T.I64 () in
                    let w = B.load fb T.I64 q in
                    B.store fb T.I64 ~ptr:q ~value:(B.bin fb Ir.Add w (B.iconst 1))
                  | Strided_read (a, s) ->
                    let ptr, elems = List.nth arrays a in
                    let idx = B.bin fb Ir.Rem (B.bin fb Ir.Mul i (B.iconst s)) (B.iconst elems) in
                    let p = B.gep fb ~base:ptr ~index:idx ~elem:T.I64 () in
                    bump (B.load fb T.I64 p)
                  | Rev_read a ->
                    let ptr, elems = List.nth arrays a in
                    let idx = B.bin fb Ir.Rem i (B.iconst elems) in
                    let idx = B.bin fb Ir.Sub (B.iconst (elems - 1)) idx in
                    let p = B.gep fb ~base:ptr ~index:idx ~elem:T.I64 () in
                    bump (B.load fb T.I64 p))
                body))
        r.loops;
      (* fold the arrays into the checksum *)
      List.iter
        (fun (ptr, elems) ->
          B.for_ fb ~lo:(B.iconst 0) ~hi:(B.iconst elems) (fun i ->
              let p = B.gep fb ~base:ptr ~index:i ~elem:T.I64 () in
              bump (B.load fb T.I64 p)))
        arrays;
      let v = B.load fb T.I64 acc in
      B.ret fb v);
  B.finish b ~entry:"main"

let far_capacity = 1 lsl 20

let run_on ms prog = Machine.run (Machine.create ~seed:9 ms prog)

let native_value prog =
  run_on (Mira_baselines.Native.create ~capacity:far_capacity ()) prog

let qcheck_pipeline_preserves =
  QCheck.Test.make ~name:"pipeline preserves random programs" ~count:60
    (QCheck.make ~print:pp_recipe gen_recipe)
    (fun recipe ->
      let prog = build_program recipe in
      Mira_mir.Verifier.verify_exn prog;
      let expected = native_value prog in
      let sites = List.map (fun s -> s.Ir.si_id) prog.Ir.p_sites in
      let plan =
        Pipeline.plan_all ~selected:sites ~lines:(List.map (fun s -> (s, 256)) sites)
      in
      let plan = { plan with Pipeline.offload = `None } in
      let compiled = Pipeline.apply prog plan ~params:Mira_sim.Params.default in
      Value.equal expected (native_value compiled))

let qcheck_systems_agree =
  QCheck.Test.make ~name:"all memory systems agree on random programs" ~count:40
    (QCheck.make ~print:pp_recipe gen_recipe)
    (fun recipe ->
      let prog = build_program recipe in
      let expected = native_value prog in
      let budget = 16 * 4096 in
      let swap =
        Mira_runtime.Runtime.(
          memsys (create (Config.make ~local_budget:budget ~far_capacity)))
      in
      let fs =
        Mira_baselines.Fastswap.create ~local_budget:budget ~far_capacity ()
      in
      let aifm =
        Mira_baselines.Aifm.create ~gran:(fun _ -> 512) ~local_budget:budget
          ~far_capacity ()
      in
      Value.equal expected (run_on swap prog)
      && Value.equal expected (run_on fs prog)
      && Value.equal expected (run_on aifm prog))

let qcheck_controller_preserves =
  QCheck.Test.make ~name:"controller preserves random programs" ~count:10
    (QCheck.make ~print:pp_recipe gen_recipe)
    (fun recipe ->
      let prog = build_program recipe in
      let expected = native_value prog in
      let opts =
        { (Mira.Controller.options_default ~local_budget:(16 * 4096)
             ~far_capacity)
          with Mira.Controller.max_iterations = 2; seed = 9 }
      in
      let compiled = Mira.Controller.optimize opts prog in
      let v, _ = Mira.Controller.run compiled in
      Value.equal expected v)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_pipeline_preserves;
    QCheck_alcotest.to_alcotest qcheck_systems_agree;
    QCheck_alcotest.to_alcotest qcheck_controller_preserves;
  ]
