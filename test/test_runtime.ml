(* Tests for the runtime layer: pointer encoding, the buffering local
   allocator, profiling counters, and the section-based memory system. *)
module Rptr = Mira_runtime.Rptr
module Local_alloc = Mira_runtime.Local_alloc
module Profile = Mira_runtime.Profile
module Runtime = Mira_runtime.Runtime
module Memsys = Mira_runtime.Memsys
module Manager = Mira_cache.Manager
module Section = Mira_cache.Section
module Remote_alloc = Mira_sim.Remote_alloc

let test_rptr_roundtrip () =
  let cases = [ (0, 0); (1, 0); (42, 123456); (Rptr.max_section, Rptr.max_offset) ] in
  List.iter
    (fun (section, offset) ->
      let v = Rptr.encode ~section ~offset in
      Alcotest.(check int) "section" section (Rptr.section v);
      Alcotest.(check int) "offset" offset (Rptr.offset v))
    cases

let test_rptr_local () =
  let v = Rptr.encode_local 999 in
  Alcotest.(check bool) "local" true (Rptr.is_local v);
  Alcotest.(check int) "addr" 999 (Rptr.offset v);
  let remote = Rptr.encode ~section:5 ~offset:10 in
  Alcotest.(check bool) "remote" false (Rptr.is_local remote)

let test_rptr_bounds () =
  Alcotest.(check bool) "section too big" true
    (try
       ignore (Rptr.encode ~section:(Rptr.max_section + 1) ~offset:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "offset too big" true
    (try
       ignore (Rptr.encode ~section:0 ~offset:(Rptr.max_offset + 1));
       false
     with Invalid_argument _ -> true)

let qcheck_rptr =
  QCheck.Test.make ~name:"rptr roundtrip" ~count:1000
    QCheck.(pair (int_bound Rptr.max_section) (int_bound 1_000_000_000))
    (fun (section, offset) ->
      let v = Rptr.encode ~section ~offset in
      Rptr.section v = section && Rptr.offset v = offset)

let test_local_alloc_buffers () =
  let remote = Remote_alloc.create ~base:0 ~limit:(1 lsl 20) in
  let la = Local_alloc.create remote ~chunk:4096 in
  let _, refilled1 = Local_alloc.alloc la 100 in
  Alcotest.(check bool) "first refills" true refilled1;
  let _, refilled2 = Local_alloc.alloc la 100 in
  Alcotest.(check bool) "second buffered" false refilled2;
  Alcotest.(check int) "one remote round trip" 1 (Local_alloc.refills la)

let test_local_alloc_reuse () =
  let remote = Remote_alloc.create ~base:0 ~limit:(1 lsl 20) in
  let la = Local_alloc.create remote ~chunk:4096 in
  let a, _ = Local_alloc.alloc la 256 in
  Local_alloc.free la ~addr:a ~len:256;
  let b, refilled = Local_alloc.alloc la 256 in
  Alcotest.(check bool) "reused without refill" false refilled;
  Alcotest.(check int) "same range" a b

let test_local_alloc_fallback () =
  (* When the remote space is smaller than the chunk, refill must fall
     back to the exact request instead of failing. *)
  let remote = Remote_alloc.create ~base:0 ~limit:1024 in
  let la = Local_alloc.create remote ~chunk:(1 lsl 20) in
  let _, refilled = Local_alloc.alloc la 512 in
  Alcotest.(check bool) "fallback worked" true refilled

let test_profile_attribution () =
  let p = Profile.create () in
  Profile.enter p ~tid:0 ~now:0.0 "outer";
  Profile.enter p ~tid:0 ~now:10.0 "inner";
  Profile.add_runtime p ~tid:0 ~ns:5.0;
  Profile.add_event p ~tid:0 ~hit:false;
  Profile.exit_ p ~tid:0 ~now:50.0 "inner";
  Profile.exit_ p ~tid:0 ~now:100.0 "outer";
  let stats = Profile.fn_stats p in
  let outer = List.assoc "outer" stats and inner = List.assoc "inner" stats in
  Alcotest.(check (float 1e-9)) "outer inclusive" 100.0 outer.Profile.total_ns;
  Alcotest.(check (float 1e-9)) "inner inclusive" 40.0 inner.Profile.total_ns;
  (* runtime time attributed to the whole stack *)
  Alcotest.(check (float 1e-9)) "outer runtime" 5.0 outer.Profile.runtime_ns;
  Alcotest.(check (float 1e-9)) "inner runtime" 5.0 inner.Profile.runtime_ns;
  Alcotest.(check int) "miss counted" 1 inner.Profile.misses

let test_profile_selection () =
  let p = Profile.create () in
  Profile.enter p ~tid:0 ~now:0.0 "hot";
  Profile.touch p ~tid:0 ~site:1;
  Profile.add_runtime p ~tid:0 ~ns:1000.0;
  Profile.add_site_overhead p ~site:1 ~ns:1000.0;
  Profile.exit_ p ~tid:0 ~now:1100.0 "hot";
  Profile.enter p ~tid:0 ~now:1100.0 "cold";
  Profile.touch p ~tid:0 ~site:2;
  Profile.add_runtime p ~tid:0 ~ns:10.0;
  Profile.add_site_overhead p ~site:2 ~ns:10.0;
  Profile.exit_ p ~tid:0 ~now:2200.0 "cold";
  Profile.add_alloc p ~site:1 ~bytes:100;
  Profile.add_alloc p ~site:2 ~bytes:1_000_000;
  (match Profile.top_functions p ~frac:0.5 with
  | [ f ] -> Alcotest.(check string) "hot first" "hot" f
  | other -> Alcotest.failf "expected 1 function, got %d" (List.length other));
  (* overhead outranks size *)
  match Profile.largest_sites p ~frac:0.5 ~among:[ "hot"; "cold" ] with
  | [ s ] -> Alcotest.(check int) "costliest site" 1 s
  | other -> Alcotest.failf "expected 1 site, got %d" (List.length other)

let make_runtime ?(budget = 1 lsl 16) () =
  Runtime.create
    Runtime.Config.(
      make ~local_budget:budget ~far_capacity:(1 lsl 20) |> with_readahead 0)

let test_runtime_alloc_load_store () =
  let rt = make_runtime () in
  let ms = Runtime.memsys rt in
  let ptr = ms.Memsys.alloc ~tid:0 ~site:1 ~bytes:4096 ~heap:true in
  Alcotest.(check bool) "far" true (ptr.Memsys.space = Memsys.Far);
  ms.Memsys.store ~tid:0 ~ptr ~len:8 ~native:false ~value:77L;
  Alcotest.(check int64) "read" 77L (ms.Memsys.load ~tid:0 ~ptr ~len:8 ~native:false);
  let sptr = ms.Memsys.alloc ~tid:0 ~site:2 ~bytes:64 ~heap:false in
  Alcotest.(check bool) "stack local" true (sptr.Memsys.space = Memsys.Local);
  ms.Memsys.store ~tid:0 ~ptr:sptr ~len:8 ~native:false ~value:5L;
  Alcotest.(check int64) "stack read" 5L
    (ms.Memsys.load ~tid:0 ~ptr:sptr ~len:8 ~native:false)

let test_runtime_section_routing () =
  let rt = make_runtime () in
  let ms = Runtime.memsys rt in
  let mgr = Runtime.manager rt in
  let clock = Mira_sim.Clock.create () in
  let cfg = Section.config_default ~sec_id:1 ~name:"s" ~line:64 ~size:4096 in
  (match Manager.add_section mgr ~clock cfg with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Manager.assign_site mgr ~site:7 ~sec_id:1;
  let ptr = ms.Memsys.alloc ~tid:0 ~site:7 ~bytes:1024 ~heap:true in
  ms.Memsys.store ~tid:0 ~ptr ~len:8 ~native:false ~value:3L;
  let section = Option.get (Manager.find_section mgr ~id:1) in
  Alcotest.(check bool) "went through the section" true
    ((Section.stats section).Section.misses > 0);
  Alcotest.(check int64) "value" 3L (ms.Memsys.load ~tid:0 ~ptr ~len:8 ~native:false)

let test_runtime_free_reuses () =
  let rt = make_runtime () in
  let ms = Runtime.memsys rt in
  let ptr = ms.Memsys.alloc ~tid:0 ~site:1 ~bytes:1024 ~heap:true in
  ms.Memsys.free ~tid:0 ~ptr;
  let ptr2 = ms.Memsys.alloc ~tid:0 ~site:1 ~bytes:1024 ~heap:true in
  Alcotest.(check int) "address reused" ptr.Memsys.addr ptr2.Memsys.addr

let test_runtime_flush_discard_sites () =
  let rt = make_runtime () in
  let ms = Runtime.memsys rt in
  let far = Runtime.far_store rt in
  let ptr = ms.Memsys.alloc ~tid:0 ~site:3 ~bytes:256 ~heap:true in
  ms.Memsys.store ~tid:0 ~ptr ~len:8 ~native:false ~value:11L;
  ms.Memsys.flush_sites ~tid:0 ~sites:[ 3 ];
  Alcotest.(check int64) "flushed to far" 11L
    (Mira_sim.Far_store.read_i64 far ~addr:ptr.Memsys.addr);
  (* Far-side mutation then discard: next load must see the new value. *)
  Mira_sim.Far_store.write_i64 far ~addr:ptr.Memsys.addr 22L;
  ms.Memsys.discard_sites ~tid:0 ~sites:[ 3 ];
  Alcotest.(check int64) "sees far mutation" 22L
    (ms.Memsys.load ~tid:0 ~ptr ~len:8 ~native:false)

let test_runtime_offload_mode () =
  let rt = make_runtime () in
  let ms = Runtime.memsys rt in
  let ptr = ms.Memsys.alloc ~tid:0 ~site:1 ~bytes:256 ~heap:true in
  ms.Memsys.store ~tid:0 ~ptr ~len:8 ~native:false ~value:1L;
  ms.Memsys.flush_sites ~tid:0 ~sites:[ 1 ];
  ms.Memsys.offload_begin ~tid:0;
  (* Offloaded accesses are far-node local: no cache involvement. *)
  ms.Memsys.store ~tid:0 ~ptr ~len:8 ~native:false ~value:42L;
  Alcotest.(check int64) "far-node read" 42L
    (ms.Memsys.load ~tid:0 ~ptr ~len:8 ~native:false);
  ms.Memsys.offload_end ~tid:0;
  ms.Memsys.discard_sites ~tid:0 ~sites:[ 1 ];
  Alcotest.(check int64) "local node sees far write" 42L
    (ms.Memsys.load ~tid:0 ~ptr ~len:8 ~native:false)

let test_runtime_reset_timing () =
  let rt = make_runtime () in
  let ms = Runtime.memsys rt in
  let ptr = ms.Memsys.alloc ~tid:0 ~site:1 ~bytes:256 ~heap:true in
  ms.Memsys.store ~tid:0 ~ptr ~len:8 ~native:false ~value:9L;
  Alcotest.(check bool) "time advanced" true (ms.Memsys.elapsed () > 0.0);
  ms.Memsys.reset_timing ();
  Alcotest.(check (float 0.0)) "clocks zeroed" 0.0 (ms.Memsys.elapsed ());
  Alcotest.(check int64) "data kept" 9L
    (ms.Memsys.load ~tid:0 ~ptr ~len:8 ~native:false)

let test_runtime_private_sections () =
  let rt = make_runtime () in
  let ms = Runtime.memsys rt in
  let mgr = Runtime.manager rt in
  let clock = Mira_sim.Clock.create () in
  List.iter
    (fun id ->
      match
        Manager.add_section mgr ~clock
          (Section.config_default ~sec_id:id ~name:"p" ~line:64 ~size:2048)
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [ 1; 2 ];
  Runtime.set_private_sections rt ~site:5 ~sec_ids:[| 1; 2 |];
  let ptr = ms.Memsys.alloc ~tid:0 ~site:5 ~bytes:512 ~heap:true in
  ignore (ms.Memsys.load ~tid:0 ~ptr ~len:8 ~native:false);
  ignore (ms.Memsys.load ~tid:1 ~ptr ~len:8 ~native:false);
  let s1 = Option.get (Manager.find_section mgr ~id:1) in
  let s2 = Option.get (Manager.find_section mgr ~id:2) in
  Alcotest.(check int) "tid0 in section 1" 1 (Section.stats s1).Section.misses;
  Alcotest.(check int) "tid1 in section 2" 1 (Section.stats s2).Section.misses

(* Regression: objects must never share a swap page / section line —
   two incoherent cached copies of the overlap would clobber each other
   (found by the DataFrame checksum guard). *)
let test_runtime_no_page_sharing () =
  let rt = make_runtime () in
  let ms = Runtime.memsys rt in
  let mgr = Runtime.manager rt in
  let clock = Mira_sim.Clock.create () in
  (match
     Manager.add_section mgr ~clock
       (Section.config_default ~sec_id:1 ~name:"s" ~line:2048 ~size:8192)
   with
  | Ok _ -> Manager.assign_site mgr ~site:1 ~sec_id:1
  | Error e -> Alcotest.fail e);
  (* site 1 sectioned, site 2 on swap, allocated back to back *)
  let p1 = ms.Memsys.alloc ~tid:0 ~site:1 ~bytes:24 ~heap:true in
  let p2 = ms.Memsys.alloc ~tid:0 ~site:2 ~bytes:24 ~heap:true in
  Alcotest.(check bool) "page aligned" true (p1.Memsys.addr mod 4096 = 0);
  Alcotest.(check bool) "no shared page" true
    (p1.Memsys.addr / 4096 <> p2.Memsys.addr / 4096);
  (* interleaved writes through the two paths stay coherent *)
  ms.Memsys.store ~tid:0 ~ptr:p1 ~len:8 ~native:false ~value:1L;
  ms.Memsys.store ~tid:0 ~ptr:p2 ~len:8 ~native:false ~value:2L;
  ms.Memsys.flush_sites ~tid:0 ~sites:[ 1; 2 ];
  Alcotest.(check int64) "site1 intact" 1L
    (ms.Memsys.load ~tid:0 ~ptr:p1 ~len:8 ~native:false);
  Alcotest.(check int64) "site2 intact" 2L
    (ms.Memsys.load ~tid:0 ~ptr:p2 ~len:8 ~native:false)

let suite =
  [
    Alcotest.test_case "rptr roundtrip" `Quick test_rptr_roundtrip;
    Alcotest.test_case "rptr local" `Quick test_rptr_local;
    Alcotest.test_case "rptr bounds" `Quick test_rptr_bounds;
    QCheck_alcotest.to_alcotest qcheck_rptr;
    Alcotest.test_case "local_alloc buffers" `Quick test_local_alloc_buffers;
    Alcotest.test_case "local_alloc reuse" `Quick test_local_alloc_reuse;
    Alcotest.test_case "local_alloc fallback" `Quick test_local_alloc_fallback;
    Alcotest.test_case "profile attribution" `Quick test_profile_attribution;
    Alcotest.test_case "profile selection" `Quick test_profile_selection;
    Alcotest.test_case "runtime alloc/load/store" `Quick test_runtime_alloc_load_store;
    Alcotest.test_case "runtime section routing" `Quick test_runtime_section_routing;
    Alcotest.test_case "runtime free reuse" `Quick test_runtime_free_reuses;
    Alcotest.test_case "runtime flush/discard" `Quick test_runtime_flush_discard_sites;
    Alcotest.test_case "runtime offload mode" `Quick test_runtime_offload_mode;
    Alcotest.test_case "runtime reset timing" `Quick test_runtime_reset_timing;
    Alcotest.test_case "runtime private sections" `Quick test_runtime_private_sections;
    Alcotest.test_case "runtime page segregation" `Quick test_runtime_no_page_sharing;
  ]
