(* Tests for the discrete-event scheduler (Mira_sim.Sched) and the
   time-API hardening that came with it:

   - Clock.advance rejects NaN / negative / negative-zero deltas.
   - N-tenant interleavings are a pure function of the clock
     movements: identical programs replay identically (QCheck).
   - A 1-tenant scheduled run is bit-identical to the pre-scheduler
     free-running clock, and scheduling does not perturb any float
     arithmetic even when tasks interleave.
   - The kv_serving workload built on top is seed-deterministic. *)

module Clock = Mira_sim.Clock
module Sched = Mira_sim.Sched
module K = Mira_workloads.Kv_serving

(* --- Clock.advance validation ------------------------------------------ *)

let test_advance_rejects () =
  let c = Clock.create () in
  let rejects name dt =
    Alcotest.(check bool)
      name true
      (try
         Clock.advance c dt;
         false
       with Invalid_argument _ -> true)
  in
  rejects "nan" Float.nan;
  rejects "negative" (-1.0);
  rejects "neg zero" (-0.0);
  Clock.advance c 0.0;
  Clock.advance c 1.5;
  Alcotest.(check (float 0.0)) "clock unpoisoned" 1.5 (Clock.now c)

(* --- deterministic interleaving ---------------------------------------- *)

(* Run [progs] (one step list per tenant) under a fresh scheduler and
   record the interleaving as (tenant, now-bits) pairs; int64 bits so
   any float divergence at all is visible. *)
type step = Advance of float | Wait of Clock.event * float

let run_progs progs =
  let s = Sched.create () in
  let log = ref [] in
  List.iteri
    (fun tenant steps ->
      Sched.spawn s ~tenant (fun () ->
          let c = Sched.clock s ~tenant in
          List.iter
            (fun st ->
              (match st with
              | Advance dt -> Clock.advance c dt
              | Wait (ev, deadline) -> ignore (Clock.wait_until ~ev c deadline));
              log := (tenant, Int64.bits_of_float (Clock.now c)) :: !log)
            steps))
    progs;
  Sched.run s;
  (List.rev !log, Sched.dispatched s, Sched.block_counts s, Sched.elapsed_ns s)

let test_interleaves_in_time_order () =
  (* Tenant 0 makes one big move, tenant 1 several small ones: the
     small moves must all dispatch before tenant 0 resumes. *)
  let progs =
    [
      [ Advance 10.0; Advance 1.0 ];
      [ Advance 1.0; Advance 1.0; Advance 1.0; Advance 1.0 ];
    ]
  in
  let log, _, _, elapsed = run_progs progs in
  let order = List.map fst log in
  Alcotest.(check (list int)) "time order" [ 1; 1; 1; 1; 0; 0 ] order;
  Alcotest.(check (float 1e-9)) "elapsed" 11.0 elapsed

let test_block_counts () =
  let progs =
    [
      [ Wait (Clock.Net_completion 7, 5.0); Wait (Clock.Fence, 9.0) ];
      [ Wait (Clock.Cache_fill, 4.0); Advance 2.0 ];
    ]
  in
  let _, _, blocks, _ = run_progs progs in
  let get k = Option.value ~default:0 (List.assoc_opt k blocks) in
  Alcotest.(check int) "net_completion" 1 (get "net_completion");
  Alcotest.(check int) "cache_fill" 1 (get "cache_fill");
  Alcotest.(check int) "fence" 1 (get "fence");
  Alcotest.(check int) "timer" 1 (get "timer")

let step_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun dt -> Advance dt) (float_range 0.0 50.0));
        ( 2,
          map2
            (fun ev deadline -> Wait (ev, deadline))
            (oneofl [ Clock.Net_completion 1; Clock.Cache_fill; Clock.Fence; Clock.Timer ])
            (float_range 0.0 200.0) );
      ])

let progs_gen =
  QCheck.Gen.(
    int_range 2 6 >>= fun tenants ->
    list_repeat tenants (list_size (int_range 1 25) step_gen))

let progs_arb =
  QCheck.make progs_gen ~print:(fun progs ->
      Printf.sprintf "%d tenants, steps %s" (List.length progs)
        (String.concat ","
           (List.map (fun p -> string_of_int (List.length p)) progs)))

let qcheck_replay_identical =
  QCheck.Test.make ~name:"N-tenant interleaving replays byte-identically"
    ~count:60 progs_arb (fun progs ->
      let a = run_progs progs in
      let b = run_progs progs in
      a = b)

(* --- 1-tenant bit-identity --------------------------------------------- *)

(* The same step program on a free-running clock and on a scheduled
   clock must produce bit-identical time and stall values — and the
   float arithmetic must stay untouched even when another tenant's
   task interleaves with it. *)
let fingerprint c =
  (Int64.bits_of_float (Clock.now c), Int64.bits_of_float (Clock.stalled_ns c))

let drive c =
  Clock.advance c 3.125;
  ignore (Clock.wait_until ~ev:Clock.Cache_fill c 10.7);
  Clock.advance c 0.3;
  ignore (Clock.wait_until ~ev:Clock.Timer c 9.0);
  (* past deadline: free *)
  Clock.advance c 1e-7;
  ignore (Clock.wait_until ~ev:(Clock.Net_completion 3) c 12.34567890123)

let test_single_tenant_bit_identity () =
  let free = Clock.create () in
  drive free;
  let s1 = Sched.create () in
  Sched.spawn s1 ~tenant:0 (fun () -> drive (Sched.clock s1 ~tenant:0));
  Sched.run s1;
  Alcotest.(check (pair int64 int64))
    "1-tenant scheduled == free-running" (fingerprint free)
    (fingerprint (Sched.clock s1 ~tenant:0));
  (* Same program with a second interfering tenant: tenant 0's floats
     are still bit-identical because scheduling never touches them. *)
  let s2 = Sched.create () in
  Sched.spawn s2 ~tenant:0 (fun () -> drive (Sched.clock s2 ~tenant:0));
  Sched.spawn s2 ~tenant:1 (fun () ->
      let c = Sched.clock s2 ~tenant:1 in
      for _ = 1 to 17 do
        Clock.advance c 0.77
      done);
  Sched.run s2;
  Alcotest.(check (pair int64 int64))
    "interleaved tenant 0 == free-running" (fingerprint free)
    (fingerprint (Sched.clock s2 ~tenant:0))

(* --- kv_serving determinism -------------------------------------------- *)

let small_cfg tenants =
  {
    K.config_default with
    K.tenants;
    requests = 150;
    keys = 256;
    value_bytes = 64;
    line = 256;
    arrival_ns = 4_000.0;
  }

let test_kv_deterministic () =
  let cfg = small_cfg 3 in
  let a = K.run cfg in
  let b = K.run cfg in
  Alcotest.(check int64) "checksum replays" a.K.checksum b.K.checksum;
  Alcotest.(check (float 0.0)) "elapsed replays" a.K.elapsed_ns b.K.elapsed_ns;
  let c = K.run { cfg with K.seed = cfg.K.seed + 1 } in
  Alcotest.(check bool) "seed matters" true (c.K.checksum <> a.K.checksum)

let test_kv_completes_all () =
  let cfg = small_cfg 2 in
  let r = K.run cfg in
  Array.iter
    (fun (t : K.tenant_report) ->
      Alcotest.(check int)
        (Printf.sprintf "tenant %d completed" t.K.tenant)
        cfg.K.requests t.K.completed)
    r.K.per_tenant;
  Alcotest.(check int) "tenant count" 2 (Array.length r.K.per_tenant)

let test_kv_validate () =
  let bad name cfg =
    Alcotest.(check bool)
      name true
      (try
         K.validate cfg;
         false
       with Invalid_argument _ -> true)
  in
  bad "tenants 0" { K.config_default with K.tenants = 0 };
  bad "requests 0" { K.config_default with K.requests = 0 };
  bad "value not x8" { K.config_default with K.value_bytes = 12 };
  bad "ratio 0" { K.config_default with K.local_ratio = 0.0 };
  bad "ratio > 1" { K.config_default with K.local_ratio = 1.5 };
  bad "nan arrival" { K.config_default with K.arrival_ns = Float.nan };
  bad "get_fraction" { K.config_default with K.get_fraction = 1.5 };
  K.validate K.config_default

(* --- doc drift guards --------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* cwd is _build/default/test under `dune runtest` but the project
   root under a bare `dune exec test/test_main.exe`. *)
let read_doc name =
  let candidates = [ "../docs/" ^ name; "docs/" ^ name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> In_channel.with_open_bin p In_channel.input_all
  | None -> Alcotest.failf "doc %s not found" name

(* Every metric a many-tenant serving run publishes must be documented
   in docs/OBSERVABILITY.md (per-tenant families under their
   placeholder forms). *)
let test_serving_metrics_documented () =
  let doc = read_doc "OBSERVABILITY.md" in
  let cfg = small_cfg 2 in
  let rt = Mira_runtime.Runtime.create (K.runtime_config cfg) in
  let r = K.run_on rt cfg in
  let reg = Mira.Report.runtime_metrics rt in
  K.publish r reg;
  let normalize name =
    if starts_with ~prefix:"serving.tenant" name then
      "serving.tenant<N>." ^ List.nth (String.split_on_char '.' name) 2
    else if starts_with ~prefix:"sched.block." name then "sched.block.<event>"
    else name
  in
  let interesting =
    Mira_telemetry.Metrics.names reg
    |> List.filter (fun n ->
           starts_with ~prefix:"serving." n
           || starts_with ~prefix:"sched." n
           || String.equal n "runtime.tenants")
    |> List.map normalize
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "serving metrics published" true
    (List.exists (starts_with ~prefix:"serving.tenant<N>.") interesting);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%S documented" n)
        true (contains doc n))
    interesting

(* docs/CONCURRENCY.md must keep up with the scheduler surface: the
   typed event kinds, the guarantees, and the user-facing knobs. *)
let test_concurrency_doc_guard () =
  let doc = read_doc "CONCURRENCY.md" in
  let must =
    List.map Clock.event_name
      [ Clock.Net_completion 0; Clock.Cache_fill; Clock.Fence; Clock.Timer ]
    @ [
        "(time, tenant id, seqno)"; "2^-16"; "bit-identical"; "with_tenants";
        "--workload kv"; "--tenants"; "open-loop"; "slo_ns";
        "BENCH_serving.json"; "sched.block.<event>"; "kv_t<N>";
        "serving.t<N>"; "Invalid_argument";
      ]
  in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%S documented" n)
        true (contains doc n))
    must

let suite =
  [
    Alcotest.test_case "advance rejects bad deltas" `Quick test_advance_rejects;
    Alcotest.test_case "interleaves in time order" `Quick
      test_interleaves_in_time_order;
    Alcotest.test_case "typed block counts" `Quick test_block_counts;
    Alcotest.test_case "1-tenant bit identity" `Quick
      test_single_tenant_bit_identity;
    Alcotest.test_case "kv_serving deterministic" `Quick test_kv_deterministic;
    Alcotest.test_case "kv_serving completes all" `Quick test_kv_completes_all;
    Alcotest.test_case "kv_serving validate" `Quick test_kv_validate;
    Alcotest.test_case "serving metrics documented" `Quick
      test_serving_metrics_documented;
    Alcotest.test_case "CONCURRENCY.md drift guard" `Quick
      test_concurrency_doc_guard;
    QCheck_alcotest.to_alcotest qcheck_replay_identical;
  ]
