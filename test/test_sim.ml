(* Unit and property tests for Mira_sim. *)
module Params = Mira_sim.Params
module Clock = Mira_sim.Clock
module Net = Mira_sim.Net
module Far_store = Mira_sim.Far_store
module Remote_alloc = Mira_sim.Remote_alloc
module Rpc = Mira_sim.Rpc

let test_clock_basic () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Clock.now c);
  Clock.advance c 5.0;
  Clock.advance c 2.5;
  Alcotest.(check (float 1e-9)) "advances" 7.5 (Clock.now c);
  let stall = Clock.wait_until c 10.0 in
  Alcotest.(check (float 1e-9)) "stall" 2.5 stall;
  Alcotest.(check (float 1e-9)) "at deadline" 10.0 (Clock.now c);
  let stall2 = Clock.wait_until c 3.0 in
  Alcotest.(check (float 0.0)) "past deadline free" 0.0 stall2;
  Clock.reset c;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Clock.now c)

(* Blocking one-shot transfer on the data plane (what the retired
   fetch/push veneers did): submit, await, return (issue cpu, done_at). *)
let sync_read net ?(urgent = true) ~side ~purpose ~now bytes =
  let sq = Net.submit net ~now ~urgent (Net.Request.read ~side ~purpose bytes) in
  let c = Net.await net ~now ~id:sq.Net.id in
  (sq.Net.issue_cpu_ns, c.Net.done_at)

let sync_write net ?(urgent = false) ~side ~purpose ~now bytes =
  let sq = Net.submit net ~now ~urgent (Net.Request.write ~side ~purpose bytes) in
  let c = Net.await net ~now ~id:sq.Net.id in
  (sq.Net.issue_cpu_ns, c.Net.done_at)

let test_net_latency_ordering () =
  let net = Net.create Params.default in
  let _, d1 = sync_read net ~side:Net.One_sided ~purpose:Net.Demand ~now:0.0 64 in
  let _, d2 = sync_read net ~side:Net.Two_sided ~purpose:Net.Demand ~now:0.0 64 in
  Alcotest.(check bool) "two-sided slower" true (d2 > d1)

let test_net_bandwidth_serializes () =
  let net = Net.create Params.default in
  let big = 1 lsl 20 in
  let _, d1 = sync_read net ~side:Net.One_sided ~purpose:Net.Demand ~now:0.0 big in
  let _, d2 = sync_read net ~side:Net.One_sided ~purpose:Net.Demand ~now:0.0 big in
  let wire = float_of_int big /. Params.default.Params.bandwidth_bytes_per_ns in
  Alcotest.(check bool) "second waits for wire" true (d2 -. d1 >= wire -. 1.0)

let test_net_async_cheaper () =
  let net = Net.create Params.default in
  let sync_cpu, _ =
    sync_read net ~side:Net.One_sided ~purpose:Net.Demand ~now:0.0 64
  in
  let async_cpu, _ =
    sync_read net ~urgent:false ~side:Net.One_sided ~purpose:Net.Prefetch
      ~now:0.0 64
  in
  Alcotest.(check bool) "async post cheaper" true (async_cpu < sync_cpu)

let test_net_stats () =
  let net = Net.create Params.default in
  ignore (sync_read net ~side:Net.One_sided ~purpose:Net.Demand ~now:0.0 100);
  ignore (sync_write net ~side:Net.One_sided ~purpose:Net.Writeback ~now:0.0 50);
  let s = Net.stats net in
  Alcotest.(check int) "msgs" 2 s.Net.msg_count;
  Alcotest.(check int) "in" 100 s.Net.bytes_in;
  Alcotest.(check int) "out" 50 s.Net.bytes_out;
  Alcotest.(check int) "demand" 100 s.Net.bytes_demand;
  Alcotest.(check int) "writeback" 50 s.Net.bytes_writeback;
  Net.reset_stats net;
  Alcotest.(check int) "reset" 0 (Net.stats net).Net.msg_count

let test_far_store_rw () =
  let fs = Far_store.create ~capacity:(1 lsl 16) in
  Far_store.write_i64 fs ~addr:128 0xDEADBEEFL;
  Alcotest.(check int64) "read back" 0xDEADBEEFL (Far_store.read_i64 fs ~addr:128);
  Alcotest.(check int64) "zero fill" 0L (Far_store.read_i64 fs ~addr:1024);
  let src = Bytes.of_string "hello world!" in
  Far_store.write fs ~addr:500 ~len:12 ~src ~src_off:0;
  let dst = Bytes.make 12 ' ' in
  Far_store.read fs ~addr:500 ~len:12 ~dst ~dst_off:0;
  Alcotest.(check string) "blit" "hello world!" (Bytes.to_string dst)

let test_far_store_capacity () =
  let fs = Far_store.create ~capacity:4096 in
  Alcotest.check_raises "over capacity"
    (Failure "Far_store: access at 4104 exceeds capacity 4096") (fun () ->
      Far_store.write_i64 fs ~addr:4096 1L)

let test_far_store_blit_within () =
  let fs = Far_store.create ~capacity:(1 lsl 12) in
  Far_store.write_i64 fs ~addr:0 42L;
  Far_store.blit_within fs ~src:0 ~dst:512 ~len:8;
  Alcotest.(check int64) "copied" 42L (Far_store.read_i64 fs ~addr:512)

let test_remote_alloc_basic () =
  let ra = Remote_alloc.create ~base:64 ~limit:4096 in
  let a = Remote_alloc.alloc ra 100 in
  let b = Remote_alloc.alloc ra 100 in
  Alcotest.(check bool) "disjoint" true (abs (a - b) >= 104);
  Alcotest.(check bool) "aligned" true (a mod 8 = 0 && b mod 8 = 0);
  Alcotest.(check int) "live" 208 (Remote_alloc.live_bytes ra);
  Remote_alloc.free ra ~addr:a ~len:100;
  Alcotest.(check int) "after free" 104 (Remote_alloc.live_bytes ra);
  Alcotest.(check bool) "no overlap" true (Remote_alloc.check_no_overlap ra)

let test_remote_alloc_exhaustion () =
  let ra = Remote_alloc.create ~base:0 ~limit:256 in
  let _ = Remote_alloc.alloc ra 128 in
  let _ = Remote_alloc.alloc ra 120 in
  Alcotest.check_raises "exhausted" Out_of_memory (fun () ->
      ignore (Remote_alloc.alloc ra 64))

let test_remote_alloc_coalesce () =
  let ra = Remote_alloc.create ~base:0 ~limit:256 in
  let a = Remote_alloc.alloc ra 64 in
  let b = Remote_alloc.alloc ra 64 in
  let c = Remote_alloc.alloc ra 64 in
  Remote_alloc.free ra ~addr:a ~len:64;
  Remote_alloc.free ra ~addr:c ~len:64;
  Remote_alloc.free ra ~addr:b ~len:64;
  (* After coalescing, a full-size allocation must succeed again. *)
  let big = Remote_alloc.alloc ra 256 in
  Alcotest.(check int) "coalesced" 0 big

let test_remote_alloc_double_free () =
  let ra = Remote_alloc.create ~base:0 ~limit:256 in
  let a = Remote_alloc.alloc ra 64 in
  Remote_alloc.free ra ~addr:a ~len:64;
  Alcotest.(check bool) "double free rejected" true
    (try
       Remote_alloc.free ra ~addr:a ~len:64;
       false
     with Invalid_argument _ -> true)

(* Property: random alloc/free sequences keep live ranges disjoint and
   high-water monotone. *)
let qcheck_alloc_free =
  QCheck.Test.make ~name:"remote_alloc random ops stay consistent" ~count:100
    QCheck.(list (int_range 8 512))
    (fun sizes ->
      let ra = Remote_alloc.create ~base:0 ~limit:(1 lsl 20) in
      let live = ref [] in
      let step i size =
        if i mod 3 = 2 && !live <> [] then begin
          match !live with
          | (addr, len) :: rest ->
            Remote_alloc.free ra ~addr ~len;
            live := rest
          | [] -> ()
        end
        else begin
          let addr = Remote_alloc.alloc ra size in
          live := (addr, size) :: !live
        end
      in
      List.iteri step sizes;
      Remote_alloc.check_no_overlap ra
      && Remote_alloc.high_water ra >= Remote_alloc.live_bytes ra)

let test_rpc_cost () =
  let net = Net.create Params.default in
  let c = Rpc.issue net ~now:0.0 ~args_bytes:64 in
  Alcotest.(check bool) "send after rpc overhead" true
    (c.Rpc.send_done_at >= Params.default.Params.rpc_overhead_ns);
  let done_at = Rpc.complete net ~body_done_at:c.Rpc.send_done_at ~ret_bytes:8 in
  Alcotest.(check bool) "completion later" true (done_at > c.Rpc.send_done_at)

let suite =
  [
    Alcotest.test_case "clock basic" `Quick test_clock_basic;
    Alcotest.test_case "net latency" `Quick test_net_latency_ordering;
    Alcotest.test_case "net bandwidth" `Quick test_net_bandwidth_serializes;
    Alcotest.test_case "net async" `Quick test_net_async_cheaper;
    Alcotest.test_case "net stats" `Quick test_net_stats;
    Alcotest.test_case "far_store rw" `Quick test_far_store_rw;
    Alcotest.test_case "far_store capacity" `Quick test_far_store_capacity;
    Alcotest.test_case "far_store blit" `Quick test_far_store_blit_within;
    Alcotest.test_case "remote_alloc basic" `Quick test_remote_alloc_basic;
    Alcotest.test_case "remote_alloc exhaustion" `Quick test_remote_alloc_exhaustion;
    Alcotest.test_case "remote_alloc coalesce" `Quick test_remote_alloc_coalesce;
    Alcotest.test_case "remote_alloc double free" `Quick test_remote_alloc_double_free;
    Alcotest.test_case "rpc cost" `Quick test_rpc_cost;
    QCheck_alcotest.to_alcotest qcheck_alloc_free;
  ]
