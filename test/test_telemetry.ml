(* The telemetry subsystem: JSON writer/parser, metric registry and
   log-scale histograms, the trace sink, typed controller decisions,
   and the end-to-end machine-readable report pipeline. *)
module Json = Mira_telemetry.Json
module Metrics = Mira_telemetry.Metrics
module Trace = Mira_telemetry.Trace
module Decision = Mira_telemetry.Decision
module C = Mira.Controller
module Runtime = Mira_runtime.Runtime
module Machine = Mira_interp.Machine
module G = Mira_workloads.Graph_traversal

(* --- JSON ---------------------------------------------------------------- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> Float.abs (x -. y) <= 1e-9 *. Float.abs x
  | Json.Int x, Json.Float y | Json.Float y, Json.Int x ->
    Float.of_int x = y
  | Json.Str x, Json.Str y -> x = y
  | Json.List xs, Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, v) (k', v') -> k = k' && json_equal v v')
         xs ys
  | _ -> false

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.Str "plain");
        ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.List []) ]);
      ]
  in
  (match Json.parse (Json.to_string doc) with
  | Ok v -> Alcotest.(check bool) "compact roundtrip" true (json_equal doc v)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Json.parse (Json.to_string_pretty doc) with
  | Ok v -> Alcotest.(check bool) "pretty roundtrip" true (json_equal doc v)
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_escapes () =
  let s = "quote\" back\\ nl\n tab\t ctrl\x01 end" in
  (match Json.parse (Json.to_string (Json.Str s)) with
  | Ok (Json.Str s') -> Alcotest.(check string) "escape roundtrip" s s'
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Json.parse "\"\\u0041\\u00e9\"" with
  | Ok (Json.Str s') -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s'
  | _ -> Alcotest.fail "unicode escape parse failed");
  (* non-finite floats must degrade to null, keeping documents valid *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan))

let test_json_errors () =
  let bad = [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\":}"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input: %s" s
      | Error _ -> ())
    bad

let test_json_accessors () =
  let doc = Json.Obj [ ("a", Json.Int 3); ("b", Json.Float 2.5) ] in
  Alcotest.(check (option (float 0.0))) "int member" (Some 3.0)
    (Option.bind (Json.member "a" doc) Json.to_float_opt);
  Alcotest.(check (option (float 0.0))) "float member" (Some 2.5)
    (Option.bind (Json.member "b" doc) Json.to_float_opt);
  Alcotest.(check bool) "missing member" true (Json.member "c" doc = None)

(* --- metrics ------------------------------------------------------------- *)

let test_hist_empty () =
  let h = Metrics.hist_create () in
  Alcotest.(check int) "count" 0 (Metrics.hist_count h);
  Alcotest.(check (float 0.0)) "p50" 0.0 (Metrics.hist_percentile h 50.0);
  Alcotest.(check (float 0.0)) "min" 0.0 (Metrics.hist_min h);
  Alcotest.(check (float 0.0)) "max" 0.0 (Metrics.hist_max h)

let test_hist_percentiles () =
  let h = Metrics.hist_create () in
  for i = 1 to 1000 do
    Metrics.hist_observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.hist_count h);
  Alcotest.(check (float 1e-6)) "exact mean" 500.5 (Metrics.hist_mean h);
  Alcotest.(check (float 0.0)) "exact min" 1.0 (Metrics.hist_min h);
  Alcotest.(check (float 0.0)) "exact max" 1000.0 (Metrics.hist_max h);
  (* quarter-octave buckets: percentiles within ~19% of truth *)
  let p50 = Metrics.hist_percentile h 50.0 in
  Alcotest.(check bool) "p50 near 500" true (p50 > 400.0 && p50 < 620.0);
  let p99 = Metrics.hist_percentile h 99.0 in
  Alcotest.(check bool) "p99 near 990" true (p99 > 800.0 && p99 <= 1000.0);
  (* clamped to exact observed extremes *)
  Alcotest.(check (float 0.0)) "p0 clamps to min" 1.0
    (Metrics.hist_percentile h 0.0);
  Alcotest.(check (float 0.0)) "p100 clamps to max" 1000.0
    (Metrics.hist_percentile h 100.0);
  Metrics.hist_reset h;
  Alcotest.(check int) "reset" 0 (Metrics.hist_count h)

let test_hist_edges () =
  (* empty: every percentile is 0, not NaN *)
  let h = Metrics.hist_create () in
  Alcotest.(check (float 0.0)) "empty p0" 0.0 (Metrics.hist_percentile h 0.0);
  Alcotest.(check (float 0.0)) "empty p100" 0.0 (Metrics.hist_percentile h 100.0);
  (* single observation: all percentiles clamp to the one value *)
  Metrics.hist_observe h 123.0;
  Alcotest.(check int) "count" 1 (Metrics.hist_count h);
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single p%g" p)
        123.0 (Metrics.hist_percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  Alcotest.(check (float 0.0)) "single mean" 123.0 (Metrics.hist_mean h)

let test_exemplar_reservoir () =
  let h = Metrics.hist_create () in
  List.iter
    (fun (v, t) -> Metrics.hist_observe ~trace:t h v)
    [ (10.0, 1); (50.0, 2); (50.0, 3); (30.0, 4); (70.0, 5); (20.0, 6) ]
  ;
  (* slowest [exemplar_cap] kept, value-descending, ties broken toward
     the earliest arrival: deterministic for a fixed input sequence *)
  let ex = Metrics.hist_exemplars h in
  Alcotest.(check int) "reservoir full" Metrics.exemplar_cap (List.length ex);
  Alcotest.(check (list (float 0.0))) "slowest first" [ 70.0; 50.0; 50.0; 30.0 ]
    (List.map (fun e -> e.Metrics.ex_value_ns) ex);
  Alcotest.(check (list int)) "tie keeps earliest arrival" [ 5; 2; 3; 4 ]
    (List.map (fun e -> e.Metrics.ex_seq) ex);
  Alcotest.(check (list int)) "traces ride along" [ 5; 2; 3; 4 ]
    (List.map (fun e -> e.Metrics.ex_trace) ex);
  (* a second histogram fed the same sequence agrees exactly *)
  let h2 = Metrics.hist_create () in
  List.iter
    (fun (v, t) -> Metrics.hist_observe ~trace:t h2 v)
    [ (10.0, 1); (50.0, 2); (50.0, 3); (30.0, 4); (70.0, 5); (20.0, 6) ]
  ;
  Alcotest.(check bool) "deterministic" true (ex = Metrics.hist_exemplars h2);
  (* untraced histograms keep the historical JSON shape *)
  let plain = Metrics.hist_create () in
  Metrics.hist_observe plain 5.0;
  Alcotest.(check bool) "no exemplars key when untraced" true
    (Json.member "exemplars" (Metrics.hist_to_json plain) = None);
  (match Json.member "exemplars" (Metrics.hist_to_json h) with
  | Some (Json.List l) ->
    Alcotest.(check int) "exemplars serialized" Metrics.exemplar_cap
      (List.length l)
  | _ -> Alcotest.fail "traced histogram must serialize exemplars");
  Metrics.hist_reset h;
  Alcotest.(check int) "reset clears reservoir" 0
    (List.length (Metrics.hist_exemplars h))

let test_registry () =
  let reg = Metrics.create () in
  Metrics.set_counter reg "a.count" 7;
  Metrics.set_gauge reg "a.gauge" 1.25;
  let h = Metrics.hist_create () in
  Metrics.hist_observe h 100.0;
  Metrics.set_hist reg "a.lat" h;
  Alcotest.(check (list string)) "publication order"
    [ "a.count"; "a.gauge"; "a.lat" ] (Metrics.names reg);
  (match Metrics.find reg "a.count" with
  | Some (Metrics.Counter 7) -> ()
  | _ -> Alcotest.fail "counter lookup");
  match Json.parse (Json.to_string (Metrics.to_json reg)) with
  | Ok doc ->
    Alcotest.(check (option (float 0.0))) "hist count in json" (Some 1.0)
      (Option.bind
         (Option.bind (Json.member "a.lat" doc) (Json.member "count"))
         Json.to_float_opt)
  | Error e -> Alcotest.failf "registry json invalid: %s" e

(* --- trace sink ---------------------------------------------------------- *)

let test_trace_sink () =
  Trace.enable ();
  Alcotest.(check bool) "enabled" true (Trace.enabled ());
  Trace.set_limit 10;
  for i = 0 to 19 do
    Trace.complete ~name:"xfer" ~cat:"net" ~lane:"net"
      ~ts_ns:(float_of_int i) ~dur_ns:1.0 ()
  done;
  Alcotest.(check int) "capped" 10 (List.length (Trace.events ()));
  Alcotest.(check int) "dropped counted" 10 (Trace.dropped ());
  (* controller events survive a full buffer *)
  Trace.instant ~name:"accept" ~cat:"controller" ~lane:"controller"
    ~ts_ns:99.0 ();
  Alcotest.(check int) "controller exempt" 11 (List.length (Trace.events ()));
  (* every emitted line is valid JSON *)
  let lines =
    String.split_on_char '\n' (Trace.to_jsonl ())
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "jsonl non-empty" true (List.length lines > 11);
  List.iter
    (fun l ->
      match Json.parse l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad trace line %s: %s" l e)
    lines;
  Trace.set_limit 200_000;
  Trace.disable ();
  Trace.clear ();
  (* disabled sink must ignore pushes *)
  Trace.complete ~name:"xfer" ~cat:"net" ~lane:"net" ~ts_ns:0.0 ~dur_ns:1.0 ();
  Alcotest.(check int) "no-op when disabled" 0 (List.length (Trace.events ()))

(* The controller-category exemption has its own cap: once both the
   main buffer and the controller headroom are full, controller events
   are dropped and counted like everything else. *)
let test_ctrl_cap_bounded () =
  Trace.enable ();
  Trace.set_limit 5;
  Trace.set_ctrl_limit 3;
  for i = 0 to 9 do
    Trace.complete ~name:"xfer" ~cat:"net" ~lane:"net" ~ts_ns:(float_of_int i)
      ~dur_ns:1.0 ()
  done;
  for i = 0 to 9 do
    Trace.instant ~name:"accept" ~cat:"controller" ~lane:"controller"
      ~ts_ns:(float_of_int i) ()
  done;
  Alcotest.(check int) "main cap + controller headroom" 8
    (List.length (Trace.events ()));
  Alcotest.(check int) "overflow counted" 12 (Trace.dropped ());
  Trace.set_limit 200_000;
  Trace.set_ctrl_limit 20_000;
  Trace.disable ();
  Trace.clear ()

(* --- logging ------------------------------------------------------------- *)

(* A suppressed level must not even format its arguments: [%t] lets the
   message observe whether formatting ran. *)
let test_log_lazy () =
  let module Log = Mira_telemetry.Log in
  let saved = Log.level () in
  let hit = ref false in
  let probe () =
    hit := true;
    "probe"
  in
  Log.set_level Log.Quiet;
  Log.debug "%t" probe;
  Alcotest.(check bool) "suppressed level formats nothing" false !hit;
  Log.info "%t" probe;
  Alcotest.(check bool) "suppressed info formats nothing" false !hit;
  Log.set_level Log.Debug;
  Log.debug "%t" probe;
  Alcotest.(check bool) "active level formats" true !hit;
  Log.set_level saved

(* --- decisions ----------------------------------------------------------- *)

let test_decision_render () =
  Alcotest.(check string) "initial run"
    "initial swap run: work=1.000 ms"
    (Decision.render (Decision.Profile_run { iteration = 0; work_ns = 1e6 }));
  Alcotest.(check string) "select"
    "iteration 2: functions=[work,scan] sites=[3,5]"
    (Decision.render
       (Decision.Select
          { iteration = 2; functions = [ "work"; "scan" ]; sites = [ 3; 5 ] }));
  Alcotest.(check string) "rollback"
    "iteration 1: regression, rolling back"
    (Decision.render (Decision.Rollback { iteration = 1; reason = "regression" }));
  let d = Decision.Accept { iteration = 3; work_ns = 2e6 } in
  Alcotest.(check int) "iteration" 3 (Decision.iteration d);
  Alcotest.(check string) "name" "accept" (Decision.name d);
  match Json.member "event" (Decision.to_json d) with
  | Some (Json.Str "accept") -> ()
  | _ -> Alcotest.fail "decision json missing event tag"

(* --- end to end ---------------------------------------------------------- *)

let optimize_small () =
  let cfg = { G.config_default with G.num_edges = 8_000; num_nodes = 800 } in
  let prog = G.build cfg in
  let far = G.far_bytes cfg in
  let opts =
    { (C.options_default ~local_budget:(far * 3 / 10) ~far_capacity:(4 * far))
      with C.max_iterations = 3 }
  in
  (prog, opts)

let test_end_to_end_report () =
  let prog, opts = optimize_small () in
  Trace.enable ();
  let compiled = C.optimize opts prog in
  let rt, machine = C.instantiate compiled in
  let _ = C.measure_work (Runtime.memsys rt) machine in
  let jsonl = Trace.to_jsonl () in
  let events = Trace.events () in
  Trace.disable ();
  Trace.clear ();
  (* the report parses and carries the decision trace *)
  (match Json.parse (Json.to_string_pretty (Mira.Report.to_json compiled)) with
  | Error e -> Alcotest.failf "report json invalid: %s" e
  | Ok doc -> (
    match Json.member "decisions" doc with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "report has no decisions"));
  (* runtime metrics parse and include fetch-latency percentiles *)
  (match Json.parse (Json.to_string (Mira.Report.runtime_stats_json rt)) with
  | Error e -> Alcotest.failf "runtime stats json invalid: %s" e
  | Ok doc ->
    Alcotest.(check bool) "has p50 fetch latency" true
      (Option.bind
         (Option.bind (Json.member "net.fetch_latency" doc)
            (Json.member "p50_ns"))
         Json.to_float_opt
      <> None));
  (* the trace saw network transfers and at least one accept/rollback *)
  Alcotest.(check bool) "net spans traced" true
    (List.exists (fun e -> e.Trace.ev_cat = "net") events);
  Alcotest.(check bool) "accept or rollback traced" true
    (List.exists
       (fun e ->
         e.Trace.ev_cat = "controller"
         && (e.Trace.ev_name = "accept" || e.Trace.ev_name = "rollback"))
       events);
  (* decision trace agrees *)
  Alcotest.(check bool) "accept or rollback decided" true
    (List.exists
       (function Decision.Accept _ | Decision.Rollback _ -> true | _ -> false)
       compiled.C.c_log);
  (* every trace line is one valid JSON document *)
  let lines =
    String.split_on_char '\n' jsonl
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "trace non-empty" true (List.length lines > 10);
  List.iter
    (fun l ->
      match Json.parse l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad trace line: %s" e)
    lines

(* Telemetry must never perturb the simulation: work time with the
   trace sink and the stall-attribution ledger enabled equals work
   time with both disabled. *)
let test_no_perturbation () =
  let prog, opts = optimize_small () in
  let compiled = C.optimize opts prog in
  let run_once ~attr () =
    let rt, machine = C.instantiate compiled in
    Mira_telemetry.Attribution.set_enabled (Runtime.attribution rt) attr;
    snd (C.measure_work (Runtime.memsys rt) machine)
  in
  let off = run_once ~attr:false () in
  Trace.enable ();
  let on = run_once ~attr:true () in
  let events = Trace.events () in
  Trace.disable ();
  Trace.clear ();
  (* guard against the check going vacuous: the traced run must have
     actually exercised the causal-span paths, including nesting *)
  Alcotest.(check bool) "traced run emitted causal spans" true
    (List.exists
       (fun e -> e.Trace.ev_phase = Trace.Begin && e.Trace.ev_parent <> 0)
       events);
  Alcotest.(check (float 0.0)) "identical simulated time" off on

(* Resets must clear every run counter: after [reset_timing] all
   published run metrics read zero, and two fresh instantiations of the
   same compiled configuration publish identical statistics. *)
let static_metrics =
  [
    "swap.capacity_bytes"; "cache.section_bytes"; "cache.metadata_bytes";
    "runtime.live_far_bytes"; "runtime.nthreads"; "runtime.tenants";
    "sched.tenants";
  ]

let test_reset_clears_stats () =
  let prog, opts = optimize_small () in
  let compiled = C.optimize opts prog in
  let run_stats () =
    let rt, machine = C.instantiate compiled in
    let _ = C.measure_work (Runtime.memsys rt) machine in
    (rt, Json.to_string (Mira.Report.runtime_stats_json rt))
  in
  let rt1, s1 = run_stats () in
  let _, s2 = run_stats () in
  Alcotest.(check string) "fresh runs publish identical stats" s1 s2;
  (Runtime.memsys rt1).Mira_runtime.Memsys.reset_timing ();
  let reg = Mira.Report.runtime_metrics rt1 in
  List.iter
    (fun name ->
      if not (List.mem name static_metrics) then
        match Metrics.find reg name with
        | Some (Metrics.Counter c) ->
          Alcotest.(check int) (name ^ " zero after reset") 0 c
        | Some (Metrics.Gauge g) ->
          Alcotest.(check (float 0.0)) (name ^ " zero after reset") 0.0 g
        | Some (Metrics.Hist h) ->
          Alcotest.(check int) (name ^ " empty after reset") 0
            (Metrics.hist_count h)
        | None -> Alcotest.failf "metric %s vanished" name)
    (Metrics.names reg)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json escapes" `Quick test_json_escapes;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "hist empty" `Quick test_hist_empty;
    Alcotest.test_case "hist percentiles" `Quick test_hist_percentiles;
    Alcotest.test_case "hist edge cases" `Quick test_hist_edges;
    Alcotest.test_case "exemplar reservoir" `Quick test_exemplar_reservoir;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "trace sink" `Quick test_trace_sink;
    Alcotest.test_case "controller cap bounded" `Quick test_ctrl_cap_bounded;
    Alcotest.test_case "log lazy formatting" `Quick test_log_lazy;
    Alcotest.test_case "decision render" `Quick test_decision_render;
    Alcotest.test_case "end-to-end report" `Slow test_end_to_end_report;
    Alcotest.test_case "no perturbation" `Slow test_no_perturbation;
    Alcotest.test_case "reset clears stats" `Slow test_reset_clears_stats;
  ]
