(* Time-resolved telemetry: the Space-Saving sketch's guarantees, the
   windowed time-series ring (telescoping counters, percentile
   clamping, pairwise downsampling at the cap), Json boundary
   round-trips for int64-exact values, the scheduler's TLS
   save/restore across parks, the interference-matrix == queue-stall
   ledger invariant (as a QCheck property over random serving
   configs), zero perturbation of an instrumented run, the named
   audit-failure message, the 8-tenant saturation-onset acceptance
   run, and a drift guard for docs/OBSERVABILITY.md's time-resolved
   telemetry section. *)
module Sketch = Mira_telemetry.Sketch
module Timeseries = Mira_telemetry.Timeseries
module Attribution = Mira_telemetry.Attribution
module Json = Mira_telemetry.Json
module Net = Mira_sim.Net
module Sched = Mira_sim.Sched
module Clock = Mira_sim.Clock
module Runtime = Mira_runtime.Runtime
module K = Mira_workloads.Kv_serving

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- Space-Saving sketch -------------------------------------------------- *)

let test_sketch () =
  let s = Sketch.create ~k:3 in
  Sketch.touch s "a";
  Sketch.touch s "a";
  Sketch.touch s "b";
  (* under capacity: all counts exact, error bound 0 *)
  Alcotest.(check int64) "exact while under capacity" 0L (Sketch.error_bound s);
  Sketch.touch s ~weight:5L "c";
  Alcotest.(check int64) "total" 8L (Sketch.total s);
  (match Sketch.top s with
  | (k1, c1, e1) :: (k2, c2, _) :: _ ->
    Alcotest.(check string) "heaviest first" "c" k1;
    Alcotest.(check int64) "weighted count" 5L c1;
    Alcotest.(check int64) "no error yet" 0L e1;
    Alcotest.(check string) "then a" "a" k2;
    Alcotest.(check int64) "a count" 2L c2
  | _ -> Alcotest.fail "expected >= 2 entries");
  (* a 4th key evicts the min entry (b, count 1) and inherits its count *)
  Sketch.touch s "d";
  let keys = List.map (fun (k, _, _) -> k) (Sketch.top s) in
  Alcotest.(check (list string)) "b evicted" [ "c"; "a"; "d" ] keys;
  (match List.find (fun (k, _, _) -> k = "d") (Sketch.top s) with
  | _, c, e ->
    Alcotest.(check int64) "inherited count + 1" 2L c;
    Alcotest.(check int64) "err = inherited count" 1L e);
  Alcotest.(check int64) "error bound total/k" 3L (Sketch.error_bound s);
  Sketch.reset s;
  Alcotest.(check int64) "reset" 0L (Sketch.total s)

let test_sketch_deterministic_ties () =
  (* all-equal counts: eviction must pick the lexicographically
     greatest key, so two identically-fed sketches agree exactly *)
  let feed () =
    let s = Sketch.create ~k:2 in
    List.iter (Sketch.touch s) [ "x"; "y"; "z" ];
    Sketch.snapshot s
  in
  Alcotest.(check (list (pair string int64))) "replays" (feed ()) (feed ());
  let keys = List.map fst (feed ()) in
  Alcotest.(check bool) "greatest key evicted on tie" false
    (List.mem "y" keys && List.mem "z" keys && List.mem "x" keys)

let test_sketch_merge () =
  let a = [ ("k1", 10L); ("k2", 3L) ] in
  let b = [ ("k2", 4L); ("k3", 9L) ] in
  let m = Sketch.merge_snapshots ~k:2 a b in
  Alcotest.(check (list (pair string int64)))
    "sum per key, keep heaviest k" [ ("k1", 10L); ("k3", 9L) ] m

(* --- windowed time-series ------------------------------------------------- *)

let test_timeseries_telescoping () =
  let ts = Timeseries.create ~interval_ns:100.0 () in
  Timeseries.add ts "reqs" 3L;
  Timeseries.sample ts "occ" 2.0;
  Timeseries.sample ts "occ" 6.0;
  Timeseries.roll ts ~now_ns:100.0;
  Timeseries.add ts "reqs" 4L;
  Timeseries.add ts "reqs" (-1L);
  Timeseries.roll ts ~now_ns:200.0;
  (* empty trailing window: finish drops it *)
  Timeseries.finish ts ~now_ns:250.0;
  let snaps = Timeseries.snapshots ts in
  Alcotest.(check int) "empty tail dropped" 2 (List.length snaps);
  let total =
    List.fold_left
      (fun acc (s : Timeseries.snapshot) ->
        List.fold_left
          (fun acc (name, v) -> if name = "reqs" then Int64.add acc v else acc)
          acc s.Timeseries.s_counters)
      0L snaps
  in
  Alcotest.(check int64) "window deltas telescope to aggregate" 6L total;
  (match snaps with
  | first :: _ ->
    Alcotest.(check (float 0.0)) "span" 100.0 first.Timeseries.s_span_ns;
    (match List.assoc_opt "occ" first.Timeseries.s_gauges with
    | Some g ->
      Alcotest.(check int) "gauge samples" 2 g.Timeseries.g_count;
      Alcotest.(check (float 1e-9)) "gauge mean" 4.0 g.Timeseries.g_mean;
      Alcotest.(check (float 0.0)) "gauge max" 6.0 g.Timeseries.g_max;
      Alcotest.(check (float 0.0)) "gauge last" 6.0 g.Timeseries.g_last
    | None -> Alcotest.fail "gauge missing")
  | [] -> Alcotest.fail "no windows")

let test_timeseries_percentiles () =
  let ts = Timeseries.create ~interval_ns:100.0 () in
  (* a single observation: every percentile clamps to the exact max *)
  Timeseries.observe ts "lat" 777.0;
  Timeseries.roll ts ~now_ns:100.0;
  (* 99 fast + 1 slow: p50 stays in the fast bucket, max is exact *)
  for _ = 1 to 99 do Timeseries.observe ts "lat" 100.0 done;
  Timeseries.observe ts "lat" 10_000.0;
  Timeseries.roll ts ~now_ns:200.0;
  match Timeseries.snapshots ts with
  | [ w1; w2 ] ->
    let h1 = List.assoc "lat" w1.Timeseries.s_hists in
    Alcotest.(check (float 0.0)) "single obs p50 exact" 777.0
      h1.Timeseries.h_p50_ns;
    Alcotest.(check (float 0.0)) "single obs p99 exact" 777.0
      h1.Timeseries.h_p99_ns;
    let h2 = List.assoc "lat" w2.Timeseries.s_hists in
    Alcotest.(check int) "count" 100 h2.Timeseries.h_count;
    Alcotest.(check (float 0.0)) "max exact" 10_000.0 h2.Timeseries.h_max_ns;
    Alcotest.(check bool) "p50 conservative (upper bucket edge)" true
      (h2.Timeseries.h_p50_ns >= 100.0 && h2.Timeseries.h_p50_ns < 150.0);
    Alcotest.(check bool) "p99 below the outlier" true
      (h2.Timeseries.h_p99_ns < 10_000.0)
  | ws -> Alcotest.failf "expected 2 windows, got %d" (List.length ws)

let test_timeseries_downsample () =
  let ts = Timeseries.create ~cap:4 ~interval_ns:10.0 () in
  for i = 1 to 16 do
    Timeseries.add ts "c" 1L;
    Timeseries.observe ts "lat" 50.0;
    Timeseries.roll ts ~now_ns:(float_of_int i *. 10.0)
  done;
  let snaps = Timeseries.snapshots ts in
  Alcotest.(check bool) "ring bounded" true (List.length snaps <= 4);
  Alcotest.(check bool) "merged at least once" true (Timeseries.merges ts > 0);
  let sum_c =
    List.fold_left
      (fun acc (s : Timeseries.snapshot) ->
        Int64.add acc (List.assoc "c" s.Timeseries.s_counters))
      0L snaps
  in
  Alcotest.(check int64) "counters survive merging" 16L sum_c;
  let span =
    List.fold_left
      (fun acc (s : Timeseries.snapshot) -> acc +. s.Timeseries.s_span_ns)
      0.0 snaps
  in
  Alcotest.(check (float 1e-9)) "spans add to full coverage" 160.0 span;
  (* windows stay contiguous oldest-first after merging *)
  let rec contiguous = function
    | (a : Timeseries.snapshot) :: (b : Timeseries.snapshot) :: rest ->
      Alcotest.(check (float 1e-9))
        "contiguous" (a.Timeseries.s_start_ns +. a.Timeseries.s_span_ns)
        b.Timeseries.s_start_ns;
      contiguous (b :: rest)
    | _ -> ()
  in
  contiguous snaps

(* --- Json boundary round-trips -------------------------------------------- *)

(* Fixed-point int64 values ride as decimal strings (OCaml's Json.Int
   is a 63-bit native int): Int64.max_int must survive a round-trip
   exactly, as must negative counter deltas and empty-window
   objects. *)
let test_json_roundtrips () =
  let rt j =
    match Json.parse (Json.to_string j) with
    | Ok j' -> Alcotest.(check string) "round-trip" (Json.to_string j)
                 (Json.to_string j')
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  let maxs = Int64.to_string Int64.max_int in
  rt (Json.Obj [ ("tick", Json.Str maxs) ]);
  (match Json.parse (Json.to_string (Json.Obj [ ("tick", Json.Str maxs) ])) with
  | Ok j ->
    (match Json.member "tick" j with
    | Some (Json.Str s) ->
      Alcotest.(check int64) "int64-exact through the string codec"
        Int64.max_int (Int64.of_string s)
    | _ -> Alcotest.fail "tick not a string")
  | Error m -> Alcotest.fail m);
  rt (Json.Obj [ ("delta", Json.Int (-42)) ]);
  rt (Json.Obj [ ("min_delta", Json.Str (Int64.to_string Int64.min_int)) ]);
  rt (Json.Obj []);
  rt (Json.List [ Json.Obj []; Json.Obj [ ("w", Json.Obj []) ] ]);
  (* an empty window object keeps its (empty) sub-objects distinct *)
  let w =
    Json.Obj
      [
        ("type", Json.Str "window"); ("tenants", Json.Obj []);
        ("interference", Json.Obj []); ("top_keys", Json.List []);
      ]
  in
  rt w;
  (* a bare number at Int64.max_int magnitude must not crash the
     parser (precision may degrade — which is exactly why fixed-point
     values are exported as strings) *)
  match Json.parse "9223372036854775807" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "big literal rejected: %s" m

(* --- scheduler TLS -------------------------------------------------------- *)

let test_sched_tls () =
  let sched = Sched.create () in
  let ambient = ref (-1) in
  Sched.add_tls sched (fun () ->
      let saved = !ambient in
      fun () -> ambient := saved);
  let failures = ref [] in
  let task tenant stop =
    let clock = Sched.clock sched ~tenant in
    fun () ->
      ambient := tenant;
      let t = ref (float_of_int (10 + tenant)) in
      while Clock.now clock < stop do
        ignore (Clock.wait_until clock !t);
        (* the park/resume must restore this task's ambient value even
           though the other task overwrote it while we slept *)
        if !ambient <> tenant then
          failures := (tenant, !ambient) :: !failures;
        t := !t +. 10.0
      done
  in
  Sched.spawn sched ~tenant:0 (task 0 200.0);
  Sched.spawn sched ~tenant:1 (task 1 170.0);
  Sched.run sched;
  Alcotest.(check (list (pair int int))) "ambient state restored per task" []
    !failures

(* --- serving timeline ----------------------------------------------------- *)

let small_cfg ?(tenants = 3) ?(requests = 150) ?(seed = 7) () =
  {
    K.config_default with
    K.tenants;
    requests;
    keys = 512;
    value_bytes = 64;
    local_ratio = 0.25;
    seed;
  }

let run_with_window ?timeline cfg window =
  let rt_cfg =
    K.runtime_config cfg
    |> Runtime.Config.with_dataplane
         { Net.dp_default with Net.window }
  in
  let rt = Runtime.create rt_cfg in
  let r = K.run_on ?timeline rt cfg in
  (rt, r)

let test_zero_perturbation () =
  let cfg = small_cfg () in
  let _, plain = run_with_window cfg 4 in
  let tl = K.Timeline.make () in
  let _, timed = run_with_window ~timeline:tl cfg 4 in
  Alcotest.(check int64) "checksum unchanged" plain.K.checksum timed.K.checksum;
  Alcotest.(check (float 0.0)) "elapsed unchanged" plain.K.elapsed_ns
    timed.K.elapsed_ns;
  Alcotest.(check string) "report json unchanged"
    (Json.to_string (K.report_json plain))
    (Json.to_string (K.report_json timed))

(* Find the per-window per-tenant counter sums and the summary rows in
   the exported JSONL. *)
let jsonl_parts lines =
  let windows, summaries =
    List.partition
      (fun j ->
        match Json.member "type" j with Some (Json.Str "window") -> true | _ -> false)
      lines
  in
  match summaries with
  | [ s ] -> (windows, s)
  | _ -> Alcotest.fail "expected exactly one summary line"

let window_tenant_sum windows ~tenant field =
  List.fold_left
    (fun acc w ->
      match Json.member "tenants" w with
      | Some tenants -> (
        match Json.member (Printf.sprintf "t%d" tenant) tenants with
        | Some row -> (
          match Json.member field row with
          | Some (Json.Int n) -> acc + n
          | _ -> acc)
        | None -> acc)
      | None -> Alcotest.fail "window without tenants object")
    0 windows

(* The tentpole invariant, checked two ways: directly against the
   in-memory matrix/ledger (int64-exact) and through the exported
   summary (decimal strings), over random configurations.  Plus the
   telescoping property: per-window request counters sum to each
   tenant's end-of-run completion count. *)
let qcheck_interference_invariant =
  QCheck.Test.make ~name:"interference rows = queue-stall buckets; telescoping"
    ~count:6
    QCheck.(triple (int_range 2 4) (int_range 80 200) (int_range 1 1000))
    (fun (tenants, requests, seed) ->
      let cfg = small_cfg ~tenants ~requests ~seed () in
      let tl = K.Timeline.make ~interval_ns:50_000.0 () in
      let rt, r = run_with_window ~timeline:tl cfg 2 in
      let net = Runtime.net rt in
      let attr = Runtime.attribution rt in
      let ifr = Net.interference net in
      for w = 0 to tenants - 1 do
        let row = Net.Interference.row_fp ifr ~tenant:w in
        let ledger = Attribution.tenant_cause_fp attr ~tenant:w Attribution.Queueing in
        if row <> ledger then
          QCheck.Test.fail_reportf
            "tenant %d: interference row %Ld fp <> queue-stall bucket %Ld fp"
            w row ledger;
        (* each row also balances against its own cells *)
        let cells =
          List.fold_left
            (fun acc (waiter, _, v) -> if waiter = w then Int64.add acc v else acc)
            0L
            (Net.Interference.cells ifr)
        in
        if cells <> row then
          QCheck.Test.fail_reportf "tenant %d: cells %Ld <> row total %Ld" w
            cells row
      done;
      let windows, summary = jsonl_parts (K.Timeline.jsonl tl ~rt) in
      (* summary repeats the invariant in the export *)
      (match Json.member "tenant_rows" summary with
      | Some (Json.Obj rows) ->
        List.iter
          (fun (_, row) ->
            match (Json.member "interference_fp" row, Json.member "queueing_fp" row) with
            | Some (Json.Str a), Some (Json.Str b) ->
              if a <> b then
                QCheck.Test.fail_reportf "summary rows differ: %s <> %s" a b
            | _ -> QCheck.Test.fail_report "summary row missing fp fields")
          rows
      | _ -> QCheck.Test.fail_report "summary without tenant_rows");
      Array.iter
        (fun (tr : K.tenant_report) ->
          let sum = window_tenant_sum windows ~tenant:tr.K.tenant "requests" in
          if sum <> tr.K.completed then
            QCheck.Test.fail_reportf
              "tenant %d: window counters sum to %d, completed %d" tr.K.tenant
              sum tr.K.completed)
        r.K.per_tenant;
      true)

(* Acceptance: an oversubscribed 8-tenant run on a tight in-flight
   window.  The timeline must find a saturated window no later than
   the first SLO-burn window, and the hot-key sketch must name
   per-tenant keys. *)
let test_saturation_acceptance () =
  let cfg =
    { (small_cfg ~tenants:8 ~requests:400 ()) with K.local_ratio = 0.05 }
  in
  let tl = K.Timeline.make () in
  let rt, r = run_with_window ~timeline:tl cfg 2 in
  Alcotest.(check bool) "run actually misses its SLO" true
    (r.K.agg_slo_miss_frac > 0.01);
  let sat =
    match K.Timeline.saturation_onset_ns tl with
    | Some ns -> ns
    | None -> Alcotest.fail "no saturated window found"
  in
  let burn =
    match K.Timeline.first_burn_ns tl with
    | Some ns -> ns
    | None -> Alcotest.fail "no burning window found"
  in
  Alcotest.(check bool) "occupancy pins before (or as) the SLO burns" true
    (sat <= burn);
  let windows, _ = jsonl_parts (K.Timeline.jsonl tl ~rt) in
  let some_keys =
    List.exists
      (fun w ->
        match Json.member "top_keys" w with
        | Some (Json.List (entry :: _)) -> (
          match Json.member "key" entry with
          | Some (Json.Str k) -> contains k ":k"
          | _ -> false)
        | _ -> false)
      windows
  in
  Alcotest.(check bool) "top keys name tenant:key pairs" true some_keys;
  let some_interference =
    List.exists
      (fun w ->
        match Json.member "interference" w with
        | Some (Json.Obj (_ :: _)) -> true
        | _ -> false)
      windows
  in
  Alcotest.(check bool) "interference rows present under contention" true
    some_interference

(* --- audit failure message ------------------------------------------------ *)

let test_audit_names_bucket () =
  let a = Attribution.create () in
  Attribution.set_context a ~fn:"work" ~site:1;
  Attribution.charge a Attribution.Queueing 10.0;
  Attribution.unbalance_for_test a Attribution.Queueing 7L;
  match Attribution.check a with
  | Ok () -> Alcotest.fail "expected audit failure"
  | Error msg ->
    Alcotest.(check bool) "names the bucket" true (contains msg "queueing");
    Alcotest.(check bool) "exact fp delta" true (contains msg "7 fp")

(* --- doc drift guard ------------------------------------------------------ *)

let test_doc_drift () =
  let doc =
    In_channel.with_open_bin "../docs/OBSERVABILITY.md" In_channel.input_all
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "docs/OBSERVABILITY.md mentions %S" needle)
        true (contains doc needle))
    [
      "Time-resolved telemetry"; "--timeline"; "Space-Saving"; "total/k";
      "pairwise"; "queue-stall"; "interference"; "sat_onset_ms";
    ]

let suite =
  [
    Alcotest.test_case "sketch counts/eviction/error bound" `Quick test_sketch;
    Alcotest.test_case "sketch deterministic ties" `Quick
      test_sketch_deterministic_ties;
    Alcotest.test_case "sketch snapshot merge" `Quick test_sketch_merge;
    Alcotest.test_case "timeseries telescoping + gauges" `Quick
      test_timeseries_telescoping;
    Alcotest.test_case "timeseries percentiles" `Quick
      test_timeseries_percentiles;
    Alcotest.test_case "timeseries ring downsampling" `Quick
      test_timeseries_downsample;
    Alcotest.test_case "json int64/negative/empty round-trips" `Quick
      test_json_roundtrips;
    Alcotest.test_case "sched TLS save/restore across parks" `Quick
      test_sched_tls;
    Alcotest.test_case "timeline is zero-perturbation" `Quick
      test_zero_perturbation;
    QCheck_alcotest.to_alcotest qcheck_interference_invariant;
    Alcotest.test_case "8-tenant saturation precedes burn" `Quick
      test_saturation_acceptance;
    Alcotest.test_case "audit failure names bucket + fp delta" `Quick
      test_audit_names_bucket;
    Alcotest.test_case "OBSERVABILITY.md stays in sync" `Quick test_doc_drift;
  ]
