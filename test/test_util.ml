(* Unit and property tests for Mira_util. *)
module Prng = Mira_util.Prng
module Stats = Mira_util.Stats
module Misc = Mira_util.Misc
module Table = Mira_util.Table

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let t = Prng.create 11 in
  for _ = 1 to 10_000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_in () =
  let t = Prng.create 3 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in t (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_prng_split_independent () =
  let t = Prng.create 9 in
  let u = Prng.split t in
  let xs = List.init 16 (fun _ -> Prng.next_int64 t) in
  let ys = List.init 16 (fun _ -> Prng.next_int64 u) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_uniformish () =
  let t = Prng.create 123 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int t 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true
        (abs (c - (n / 10)) < n / 50))
    buckets

let test_prng_shuffle_permutation () =
  let t = Prng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_stats_mean_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_empty () =
  Alcotest.(check (float 0.0)) "mean empty" 0.0 (Stats.mean [||]);
  Alcotest.check_raises "percentile empty"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 50.0))

let test_stats_percentile_edges () =
  (* single element: every percentile is that element *)
  let one = [| 42.0 |] in
  Alcotest.(check (float 1e-9)) "single p0" 42.0 (Stats.percentile one 0.0);
  Alcotest.(check (float 1e-9)) "single p50" 42.0 (Stats.percentile one 50.0);
  Alcotest.(check (float 1e-9)) "single p100" 42.0 (Stats.percentile one 100.0);
  (* input order must not matter: percentile sorts a copy *)
  let unsorted = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "unsorted median" 3.0 (Stats.median unsorted);
  Alcotest.(check (float 1e-9)) "unsorted p0" 1.0 (Stats.percentile unsorted 0.0);
  Alcotest.(check (float 1e-9)) "unsorted p100" 5.0
    (Stats.percentile unsorted 100.0);
  (* and the original array stays untouched *)
  Alcotest.(check (float 1e-9)) "input not sorted in place" 5.0 unsorted.(0)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 4.0 (Stats.geomean [| 2.0; 8.0 |]);
  Alcotest.(check (float 1e-9)) "geomean empty" 0.0 (Stats.geomean [||]);
  (* a zero factor collapses the product *)
  Alcotest.(check (float 1e-9)) "geomean with zero" 0.0
    (Stats.geomean [| 0.0; 8.0; 2.0 |])

let test_stats_online () =
  let o = Stats.online_create () in
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Array.iter (Stats.online_add o) xs;
  Alcotest.(check int) "count" 8 (Stats.online_count o);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean xs) (Stats.online_mean o);
  Alcotest.(check (float 1e-6)) "stddev" (Stats.stddev xs) (Stats.online_stddev o);
  Stats.online_reset o;
  Alcotest.(check int) "reset count" 0 (Stats.online_count o);
  Alcotest.(check (float 0.0)) "reset mean" 0.0 (Stats.online_mean o);
  Alcotest.(check (float 0.0)) "reset stddev" 0.0 (Stats.online_stddev o);
  (* refilling after reset behaves like a fresh accumulator *)
  Array.iter (Stats.online_add o) xs;
  Alcotest.(check (float 1e-9)) "refill mean" (Stats.mean xs)
    (Stats.online_mean o)

let test_misc_round () =
  Alcotest.(check int) "round_up" 16 (Misc.round_up 13 8);
  Alcotest.(check int) "round_up exact" 16 (Misc.round_up 16 8);
  Alcotest.(check int) "round_down" 8 (Misc.round_down 13 8);
  Alcotest.(check int) "divide_ceil" 3 (Misc.divide_ceil 17 8)

let test_misc_pow2 () =
  Alcotest.(check bool) "pow2" true (Misc.is_pow2 64);
  Alcotest.(check bool) "not pow2" false (Misc.is_pow2 48);
  Alcotest.(check int) "next_pow2" 64 (Misc.next_pow2 33);
  Alcotest.(check int) "next_pow2 exact" 32 (Misc.next_pow2 32);
  Alcotest.(check int) "log2" 5 (Misc.log2 32);
  Alcotest.(check int) "log2 floor" 5 (Misc.log2 63)

let test_misc_clamp () =
  Alcotest.(check int) "clamp lo" 3 (Misc.clamp ~lo:3 ~hi:9 1);
  Alcotest.(check int) "clamp hi" 9 (Misc.clamp ~lo:3 ~hi:9 99);
  Alcotest.(check int) "clamp mid" 5 (Misc.clamp ~lo:3 ~hi:9 5)

let test_table_render () =
  let t = Table.create ~header:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 4 = "name");
  (* rows render in insertion order *)
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 4 (List.length lines)

let qcheck_round_up =
  QCheck.Test.make ~name:"round_up is minimal multiple" ~count:500
    QCheck.(pair (int_bound 100_000) (int_range 1 512))
    (fun (x, align) ->
      let r = Misc.round_up x align in
      r >= x && r mod align = 0 && r - x < align)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng int_in" `Quick test_prng_int_in;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng uniform" `Quick test_prng_uniformish;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean_stddev;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "stats percentile edges" `Quick
      test_stats_percentile_edges;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats online" `Quick test_stats_online;
    Alcotest.test_case "misc round" `Quick test_misc_round;
    Alcotest.test_case "misc pow2" `Quick test_misc_pow2;
    Alcotest.test_case "misc clamp" `Quick test_misc_clamp;
    Alcotest.test_case "table render" `Quick test_table_render;
    QCheck_alcotest.to_alcotest qcheck_round_up;
  ]
