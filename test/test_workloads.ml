(* Workload builders: every program must verify, run on every memory
   system with identical results, and expose the paper's structure. *)
module Ir = Mira_mir.Ir
module Verifier = Mira_mir.Verifier
module Machine = Mira_interp.Machine
module Value = Mira_interp.Value
module Wu = Mira_workloads.Workload_util
module G = Mira_workloads.Graph_traversal
module D = Mira_workloads.Dataframe
module M = Mira_workloads.Mcf
module Gpt = Mira_workloads.Gpt2

let far_capacity = 1 lsl 23

let tiny_graph = { G.config_default with G.num_edges = 800; num_nodes = 100 }
let tiny_df = { D.config_default with D.rows = 600; groups = 64 }
let tiny_mcf = { M.config_default with M.num_nodes = 120; num_arcs = 500; rounds = 2 }
let tiny_gpt = { Gpt.config_default with Gpt.layers = 2; d_model = 8; seq = 4 }

let programs () =
  [
    ("graph", G.build tiny_graph);
    ("dataframe", D.build tiny_df);
    ("mcf", M.build tiny_mcf);
    ("gpt2", Gpt.build tiny_gpt);
  ]

let test_all_verify () =
  List.iter
    (fun (name, p) ->
      match Verifier.verify p with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: %s" name (String.concat "; " es))
    (programs ())

let test_all_have_conventions () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) (name ^ " has work") true
        (List.mem_assoc "work" p.Ir.p_funcs);
      Alcotest.(check bool) (name ^ " has init") true
        (List.mem_assoc "init" p.Ir.p_funcs);
      Alcotest.(check string) (name ^ " entry") "main" p.Ir.p_entry)
    (programs ())

let test_results_system_independent () =
  List.iter
    (fun (name, p) ->
      let native = Mira_baselines.Native.create ~capacity:far_capacity () in
      let expected = Machine.run (Machine.create native p) in
      let budget = 1 lsl 16 in
      let swap =
        Mira_runtime.Runtime.(
          memsys (create (Config.make ~local_budget:budget ~far_capacity)))
      in
      let got = Machine.run (Machine.create swap p) in
      Alcotest.(check bool) (name ^ " matches") true (Value.equal expected got))
    (programs ())

let test_graph_far_bytes () =
  Alcotest.(check int) "far bytes"
    ((800 * G.edge_bytes) + (100 * G.node_bytes))
    (G.far_bytes { tiny_graph with G.with_random_array = false });
  Alcotest.(check int) "edge struct" 24 G.edge_bytes;
  Alcotest.(check int) "node struct" 128 G.node_bytes

let test_mcf_layout () =
  Alcotest.(check int) "node 64B" 64 M.node_bytes;
  Alcotest.(check int) "arc 64B" 64 M.arc_bytes

let test_gpt_scaling () =
  let w = Gpt.layer_weight_bytes tiny_gpt in
  (* 12 d^2 doubles *)
  Alcotest.(check int) "layer weights" (12 * 8 * 8 * 8) w;
  Alcotest.(check bool) "far covers layers" true
    (Gpt.far_bytes tiny_gpt > 2 * w)

let test_site_lookup () =
  let p = G.build tiny_graph in
  let e = Wu.site_id p "edges" in
  let n = Wu.site_id p "nodes" in
  Alcotest.(check bool) "distinct" true (e <> n);
  Alcotest.(check int) "edge gran" G.edge_bytes (Wu.elem_gran p e);
  Alcotest.(check int) "chunked" 4096 (Wu.chunked_gran ~chunk:4096 p e);
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Wu.site_id p "nope");
       false
     with Not_found -> true)

let test_graph_parallel_variant () =
  let p = G.build { tiny_graph with G.parallel = true } in
  let native = Mira_baselines.Native.create ~capacity:far_capacity () in
  let expected = Machine.run (Machine.create native p) in
  let native4 = Mira_baselines.Native.create ~capacity:far_capacity () in
  let got = Machine.run (Machine.create ~nthreads:4 native4 p) in
  Alcotest.(check bool) "parallel identical" true (Value.equal expected got)

let test_dataframe_agg_only () =
  let p = D.build { tiny_df with D.ops = `Agg_only } in
  Alcotest.(check bool) "verifies" true (Result.is_ok (Verifier.verify p));
  let native = Mira_baselines.Native.create ~capacity:far_capacity () in
  ignore (Machine.run (Machine.create native p))

let test_mcf_rounds_effect () =
  (* More rounds -> strictly more work (dynamic op count grows) *)
  let run rounds =
    let p = M.build { tiny_mcf with M.rounds } in
    let native = Mira_baselines.Native.create ~capacity:far_capacity () in
    let m = Machine.create native p in
    ignore (Machine.run m);
    Machine.ops_executed m
  in
  Alcotest.(check bool) "more rounds, more ops" true (run 3 > run 1)

let suite =
  [
    Alcotest.test_case "all verify" `Quick test_all_verify;
    Alcotest.test_case "conventions" `Quick test_all_have_conventions;
    Alcotest.test_case "system independent" `Quick test_results_system_independent;
    Alcotest.test_case "graph sizes" `Quick test_graph_far_bytes;
    Alcotest.test_case "mcf layout" `Quick test_mcf_layout;
    Alcotest.test_case "gpt scaling" `Quick test_gpt_scaling;
    Alcotest.test_case "site lookup" `Quick test_site_lookup;
    Alcotest.test_case "graph parallel" `Quick test_graph_parallel_variant;
    Alcotest.test_case "dataframe agg-only" `Quick test_dataframe_agg_only;
    Alcotest.test_case "mcf rounds" `Quick test_mcf_rounds_effect;
  ]

(* Appended: micro workloads and cross-thread determinism. *)
let test_micro_sum () =
  let module Ms = Mira_workloads.Micro_sum in
  let cfg = { Ms.config_default with Ms.elems = 4096 } in
  let p = Ms.build cfg in
  Alcotest.(check bool) "verifies" true
    (Result.is_ok (Mira_mir.Verifier.verify p));
  let native = Mira_baselines.Native.create ~capacity:(1 lsl 20) () in
  let v = Machine.run (Machine.create native p) in
  (* sum of (i land 1023) over 4096 elems = 4 * (0+..+1023) *)
  let expected = Int64.of_int (4 * (1023 * 1024 / 2)) in
  Alcotest.(check bool) "sum" true (Value.equal v (Value.Vint expected));
  let swap =
    Mira_runtime.Runtime.(
      memsys (create (Config.make ~local_budget:8192 ~far_capacity:(1 lsl 20))))
  in
  Alcotest.(check bool) "swap agrees" true
    (Value.equal v (Machine.run (Machine.create swap p)))

let test_micro_sum_strided () =
  let module Ms = Mira_workloads.Micro_sum in
  let p = Ms.build { Ms.config_default with Ms.elems = 1024; stride = 4 } in
  let native = Mira_baselines.Native.create ~capacity:(1 lsl 20) () in
  ignore (Machine.run (Machine.create native p))

let suite =
  suite
  @ [
      Alcotest.test_case "micro sum" `Quick test_micro_sum;
      Alcotest.test_case "micro sum strided" `Quick test_micro_sum_strided;
    ]
